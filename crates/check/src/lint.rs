//! The source linter: project-invariant rules over a flat token stream.
//!
//! Five named rules encode the contracts earlier PRs established:
//!
//! | rule | invariant |
//! |---|---|
//! | `determinism/no-hash-iteration` | parallel results are bit-identical to serial, so nothing order-sensitive may iterate a `HashMap`/`HashSet` in `slj-runtime`, `slj-bayes`, `slj-core`'s engine, or `_par` imaging kernels |
//! | `determinism/no-wall-clock` | results never depend on timing: `Instant::now`/`SystemTime` only inside `slj-obs` (the `Stopwatch`) and the CLI |
//! | `perf/no-hot-path-alloc` | steady-state streaming is allocation-free: no `Vec::new`/`vec!`/`to_vec`/`.clone()`/`String::from`/`format!` inside `_into`/`_par` kernels and the frame-engine hot path |
//! | `robustness/no-panic-in-lib` | library code returns `SljError`, it does not `unwrap`/`expect`/`panic!`/`unreachable!` (existing findings are grandfathered in `check-baseline.json`) |
//! | `obs/no-print` | libraries report through `slj-obs`, not stdout: `println!`/`eprintln!` only in the CLI |
//!
//! Escape hatch: `// slj-check: allow(<rule>) — <reason>` on the same or
//! the preceding line suppresses one rule there, but the reason is
//! mandatory — a bare `allow(...)` emits `check/allow-missing-reason`
//! and suppresses nothing.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Finding;
use crate::CheckError;

/// `determinism/no-hash-iteration` rule id.
pub const RULE_HASH_ITER: &str = "determinism/no-hash-iteration";
/// `determinism/no-wall-clock` rule id.
pub const RULE_WALL_CLOCK: &str = "determinism/no-wall-clock";
/// `perf/no-hot-path-alloc` rule id.
pub const RULE_HOT_ALLOC: &str = "perf/no-hot-path-alloc";
/// `robustness/no-panic-in-lib` rule id.
pub const RULE_LIB_PANIC: &str = "robustness/no-panic-in-lib";
/// `obs/no-print` rule id.
pub const RULE_NO_PRINT: &str = "obs/no-print";
/// Emitted when an allow directive omits its mandatory reason.
pub const RULE_ALLOW_REASON: &str = "check/allow-missing-reason";

/// All lint rule ids with one-line descriptions (for `--list-rules`).
pub const RULES: &[(&str, &str)] = &[
    (
        RULE_HASH_ITER,
        "no HashMap/HashSet iteration where ordering feeds results",
    ),
    (
        RULE_WALL_CLOCK,
        "no Instant::now/SystemTime outside slj-obs and the CLI",
    ),
    (
        RULE_HOT_ALLOC,
        "no allocation inside _into/_par kernels and the frame-engine hot path",
    ),
    (
        RULE_LIB_PANIC,
        "no unwrap/expect/panic!/unreachable! in non-test library code",
    ),
    (RULE_NO_PRINT, "no println!/eprintln! outside the CLI"),
    (
        RULE_ALLOW_REASON,
        "slj-check: allow(...) directives must carry a reason",
    ),
];

/// Where `determinism/no-hash-iteration` applies inside a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HashScope {
    /// Rule off for this file.
    Off,
    /// Rule applies to every function.
    Everywhere,
    /// Rule applies only inside `*_par*` functions (imaging kernels).
    ParOnly,
}

/// Per-file rule configuration, derived from the repo-relative path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RuleScope {
    pub(crate) hash: HashScope,
    pub(crate) wall_clock: bool,
    pub(crate) hot_alloc: bool,
    pub(crate) lib_panic: bool,
    pub(crate) no_print: bool,
}

/// Functions that make up the frame-engine hot path (reachable from
/// `JumpSession::push_frame` every frame), in addition to the name-based
/// `*_into` / `*_par` convention.
const HOT_FN_NAMES: &[&str] = &[
    "push_frame",
    "push_silhouette",
    "finish_frame",
    "run_range",
    "process_frame",
    "process_silhouette",
    // PR7 kernel-overhaul entry points that do not follow the `_into` /
    // `_par` naming convention (the `_reference` oracles deliberately
    // stay outside the hot set).
    "compute_diff",
    "gray_median_rows",
];

/// Decides which rules apply to a repo-relative path (`/`-separated).
///
/// Returns `None` when the file is outside the lint set entirely
/// (tests, benches, binaries, examples, generated code).
pub(crate) fn scope_for(path: &str) -> Option<RuleScope> {
    let in_crates = path.starts_with("crates/") && path.contains("/src/");
    let is_umbrella = path == "src/lib.rs";
    if !path.ends_with(".rs") || (!in_crates && !is_umbrella) {
        return None;
    }
    // The CLI and per-crate binaries may print, time, and unwrap freely.
    if path.contains("/src/bin/") {
        return None;
    }
    let in_obs = path.starts_with("crates/obs/");
    let in_bench = path.starts_with("crates/bench/");
    let in_check = path.starts_with("crates/check/");
    let hash = if path.starts_with("crates/runtime/")
        || path.starts_with("crates/bayes/")
        || path == "crates/core/src/engine.rs"
    {
        HashScope::Everywhere
    } else if path.starts_with("crates/imaging/") {
        HashScope::ParOnly
    } else {
        HashScope::Off
    };
    Some(RuleScope {
        hash,
        // slj-obs owns the Stopwatch; slj-bench measures by design.
        wall_clock: !in_obs && !in_bench,
        hot_alloc: true,
        lib_panic: true,
        // slj-bench's harness reports to stdout by design; everything
        // else goes through slj-obs. The checker itself returns strings.
        no_print: !in_bench && !in_check,
    })
}

/// An `// slj-check: allow(rule) — reason` directive.
#[derive(Debug)]
pub struct Allow {
    /// 1-based line the directive sits on.
    pub line: u32,
    /// Rule id being allowed.
    pub rule: String,
    /// The mandatory reason (`None` means the directive is invalid and
    /// suppresses nothing).
    pub reason: Option<String>,
}

/// Parses an allow directive out of a line comment, if present.
pub(crate) fn parse_allow(comment: &Tok) -> Option<Allow> {
    let text = &comment.text;
    let at = text.find("slj-check:")?;
    let rest = text[at + "slj-check:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let mut reason = rest[close + 1..].trim();
    // The reason is conventionally set off with a dash; accept em dash,
    // en dash, `--`, `-`, or `:`.
    for prefix in ["—", "–", "--", "-", ":"] {
        if let Some(stripped) = reason.strip_prefix(prefix) {
            reason = stripped.trim();
            break;
        }
    }
    Some(Allow {
        line: comment.line,
        rule,
        reason: if reason.is_empty() {
            None
        } else {
            Some(reason.to_string())
        },
    })
}

/// Per-token context derived from a single forward pass.
struct Context {
    /// Index into the code-token vector → enclosing function name ("" at
    /// file/impl level).
    fn_name: Vec<String>,
    /// Token is inside `#[cfg(test)]` / `#[test]` code.
    in_test: Vec<bool>,
}

/// Annotates each code token with its enclosing function and test-ness.
///
/// Test regions are detected from attributes whose token stream contains
/// the identifier `test` but not `not` (covers `#[test]`, `#[cfg(test)]`,
/// `#[tokio::test]`-style attributes) — the region is the brace-block the
/// attribute decorates.
fn annotate(code: &[&Tok]) -> Context {
    let mut fn_name = Vec::with_capacity(code.len());
    let mut in_test = Vec::with_capacity(code.len());

    let mut depth = 0usize;
    // (name, depth of the body's opening brace)
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut awaiting_fn_name = false;
    let mut pending_test = false;

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];

        // Attribute: scan its bracket group for test markers.
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Record context for the `#` and `[` tokens, then the body.
            let current_fn = fn_stack.last().map(|(n, _)| n.clone()).unwrap_or_default();
            let currently_test = !test_stack.is_empty();
            let mut j = i + 1;
            let mut bracket_depth = 0usize;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < code.len() {
                let a = code[j];
                if a.is_punct('[') {
                    bracket_depth += 1;
                } else if a.is_punct(']') {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Ident {
                    if a.text == "test" || a.text == "bench" {
                        saw_test = true;
                    } else if a.text == "not" {
                        saw_not = true;
                    }
                }
                j += 1;
            }
            if saw_test && !saw_not {
                pending_test = true;
            }
            // Annotate the attribute's own tokens and skip past them.
            for _ in i..=j.min(code.len().saturating_sub(1)) {
                fn_name.push(current_fn.clone());
                in_test.push(currently_test);
            }
            i = j + 1;
            continue;
        }

        // Track `fn <name>`.
        if t.is_ident("fn") {
            awaiting_fn_name = true;
        } else if awaiting_fn_name && t.kind == TokKind::Ident {
            pending_fn = Some(t.text.clone());
            awaiting_fn_name = false;
        } else if awaiting_fn_name && t.is_punct('(') {
            // `fn(u32) -> u32` function-pointer type: no name follows.
            awaiting_fn_name = false;
        } else if t.is_punct(';') {
            // Trait method declaration without a body, or a braceless
            // item after an attribute (`#[cfg(test)] use ...;`): drop
            // whatever was pending.
            pending_fn = None;
            pending_test = false;
        } else if t.is_punct('{') {
            depth += 1;
            if pending_test {
                test_stack.push(depth);
                pending_test = false;
            }
            if let Some(name) = pending_fn.take() {
                fn_stack.push((name, depth));
            }
        }

        // Signature tokens (between `fn name` and the body's `{`) belong
        // to the pending function so parameter bindings are recorded
        // under the right name.
        let current_fn = pending_fn
            .clone()
            .or_else(|| fn_stack.last().map(|(n, _)| n.clone()))
            .unwrap_or_default();
        fn_name.push(current_fn);
        in_test.push(!test_stack.is_empty());

        if t.is_punct('}') {
            if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                fn_stack.pop();
            }
            if test_stack.last().is_some_and(|d| *d == depth) {
                test_stack.pop();
            }
            depth = depth.saturating_sub(1);
        }
        i += 1;
    }

    Context { fn_name, in_test }
}

/// Whether a function name marks a steady-state hot path.
pub(crate) fn is_hot_fn(name: &str) -> bool {
    name.ends_with("_into")
        || name.ends_with("_par")
        || name.contains("_par_")
        || HOT_FN_NAMES.contains(&name)
}

/// Whether a function name marks a `_par` parallel kernel.
fn is_par_fn(name: &str) -> bool {
    name.ends_with("_par") || name.contains("_par_")
}

/// Lints one source file given as text.
///
/// `path` is the repo-relative `/`-separated path; it selects which rules
/// apply. Returns every finding, including suppressed ones (with
/// [`Finding::allowed`] set), so callers can render the full picture.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let Some(scope) = scope_for(path) else {
        return Vec::new();
    };
    let toks = lex(source);

    let mut allows: Vec<Allow> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for t in &toks {
        if t.kind == TokKind::Comment {
            if let Some(allow) = parse_allow(t) {
                if allow.reason.is_none() {
                    findings.push(Finding::error(
                        RULE_ALLOW_REASON,
                        path,
                        allow.line,
                        format!(
                            "allow({}) without a reason; write `// slj-check: allow({}) — <why>`",
                            allow.rule, allow.rule
                        ),
                    ));
                }
                allows.push(allow);
            }
        }
    }

    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let ctx = annotate(&code);

    let id = |i: usize, name: &str| code.get(i).is_some_and(|t| t.is_ident(name));
    let p = |i: usize, ch: char| code.get(i).is_some_and(|t| t.is_punct(ch));
    let any_id = |i: usize, names: &[&str]| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
    };

    // Pass A for the hash rule: collect identifiers bound to hash
    // containers, keyed by enclosing function.
    let mut hash_bound: BTreeSet<(String, String)> = BTreeSet::new();
    if scope.hash != HashScope::Off {
        for i in 0..code.len() {
            if !(id(i, "HashMap") || id(i, "HashSet")) {
                continue;
            }
            // Walk backwards to the start of the statement looking for a
            // `let` binding or a `name: [&]Hash...` parameter/field.
            let mut j = i;
            let mut steps = 0usize;
            while j > 0 && steps < 48 {
                j -= 1;
                steps += 1;
                let t = code[j];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                if t.is_ident("let") {
                    // `let [mut] name ... = ... HashMap ...`
                    let mut k = j + 1;
                    if id(k, "mut") {
                        k += 1;
                    }
                    if let Some(name_tok) = code.get(k) {
                        if name_tok.kind == TokKind::Ident {
                            hash_bound.insert((
                                ctx.fn_name.get(i).cloned().unwrap_or_default(),
                                name_tok.text.clone(),
                            ));
                        }
                    }
                    break;
                }
            }
            // Parameter style: `name: &HashMap<..>` — the colon directly
            // (modulo `&`/`mut`) precedes the type.
            let mut k = i;
            while k > 0
                && (p(k - 1, '&') || id(k - 1, "mut") || code[k - 1].kind == TokKind::Lifetime)
            {
                k -= 1;
            }
            if k >= 2 && p(k - 1, ':') && !p(k - 2, ':') {
                if let Some(name_tok) = code.get(k.wrapping_sub(2)) {
                    if name_tok.kind == TokKind::Ident {
                        hash_bound.insert((
                            ctx.fn_name.get(i).cloned().unwrap_or_default(),
                            name_tok.text.clone(),
                        ));
                    }
                }
            }
        }
    }

    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "into_iter",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
    ];

    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident && t.kind != TokKind::Punct {
            continue;
        }
        let in_test = ctx.in_test.get(i).copied().unwrap_or(false);
        if in_test {
            continue;
        }
        let fn_here = ctx.fn_name.get(i).map(String::as_str).unwrap_or("");

        // determinism/no-wall-clock
        if scope.wall_clock {
            if id(i, "Instant") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "now") {
                findings.push(Finding::error(
                    RULE_WALL_CLOCK,
                    path,
                    t.line,
                    "Instant::now() outside slj-obs; time through slj_obs::Stopwatch".into(),
                ));
            }
            if id(i, "SystemTime") {
                findings.push(Finding::error(
                    RULE_WALL_CLOCK,
                    path,
                    t.line,
                    "SystemTime outside slj-obs; results must not depend on wall-clock time".into(),
                ));
            }
        }

        // obs/no-print
        if scope.no_print
            && any_id(i, &["println", "eprintln", "print", "eprint", "dbg"])
            && p(i + 1, '!')
        {
            findings.push(Finding::error(
                RULE_NO_PRINT,
                path,
                t.line,
                format!(
                    "{}! in library code; report through slj-obs or return data to the CLI",
                    t.text
                ),
            ));
        }

        // robustness/no-panic-in-lib
        if scope.lib_panic {
            if p(i, '.') && any_id(i + 1, &["unwrap", "expect"]) && p(i + 2, '(') {
                let line = code.get(i + 1).map_or(t.line, |n| n.line);
                let what = code.get(i + 1).map(|n| n.text.clone()).unwrap_or_default();
                findings.push(Finding::error(
                    RULE_LIB_PANIC,
                    path,
                    line,
                    format!(".{what}() in library code; return SljError instead"),
                ));
            }
            if any_id(i, &["panic", "unreachable", "todo", "unimplemented"]) && p(i + 1, '!') {
                findings.push(Finding::error(
                    RULE_LIB_PANIC,
                    path,
                    t.line,
                    format!("{}! in library code; return SljError instead", t.text),
                ));
            }
        }

        // perf/no-hot-path-alloc
        if scope.hot_alloc && is_hot_fn(fn_here) {
            let mut hit: Option<&str> = None;
            if id(i, "Vec") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "new") {
                hit = Some("Vec::new()");
            } else if id(i, "vec") && p(i + 1, '!') {
                hit = Some("vec!");
            } else if p(i, '.') && id(i + 1, "to_vec") && p(i + 2, '(') {
                hit = Some(".to_vec()");
            } else if p(i, '.') && id(i + 1, "clone") && p(i + 2, '(') {
                hit = Some(".clone()");
            } else if id(i, "String") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "from") {
                hit = Some("String::from");
            } else if id(i, "format") && p(i + 1, '!') {
                hit = Some("format!");
            } else if p(i, '.') && any_id(i + 1, &["to_string", "to_owned"]) && p(i + 2, '(') {
                hit = Some(".to_string()/.to_owned()");
            } else if id(i, "Box") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "new") {
                hit = Some("Box::new()");
            }
            if let Some(what) = hit {
                let line = if p(i, '.') {
                    code.get(i + 1).map_or(t.line, |n| n.line)
                } else {
                    t.line
                };
                findings.push(Finding::error(
                    RULE_HOT_ALLOC,
                    path,
                    line,
                    format!("{what} inside hot function `{fn_here}`; reuse scratch buffers"),
                ));
            }
        }

        // determinism/no-hash-iteration
        let hash_applies = match scope.hash {
            HashScope::Off => false,
            HashScope::Everywhere => true,
            HashScope::ParOnly => is_par_fn(fn_here),
        };
        if hash_applies {
            // `recv.iter()` style on a known hash binding.
            if p(i, '.')
                && code.get(i + 1).is_some_and(|n| {
                    n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
                })
                && p(i + 2, '(')
            {
                if i > 0 && code[i - 1].kind == TokKind::Ident {
                    let recv = &code[i - 1].text;
                    if hash_bound.contains(&(fn_here.to_string(), recv.clone())) {
                        let line = code.get(i + 1).map_or(t.line, |n| n.line);
                        findings.push(Finding::error(
                            RULE_HASH_ITER,
                            path,
                            line,
                            format!(
                                "iteration over hash container `{recv}` (`.{}`): hash order is \
                                 nondeterministic; use a sorted Vec or BTreeMap",
                                code[i + 1].text
                            ),
                        ));
                    }
                }
            }
            // `for x in map`-style loops over a known hash binding.
            if id(i, "for") {
                let mut j = i + 1;
                let mut guard = 0usize;
                while j < code.len() && guard < 24 && !code[j].is_ident("in") {
                    j += 1;
                    guard += 1;
                }
                if j < code.len() && code[j].is_ident("in") {
                    let mut k = j + 1;
                    let mut guard2 = 0usize;
                    while k < code.len() && guard2 < 16 && !code[k].is_punct('{') {
                        if code[k].kind == TokKind::Ident
                            && hash_bound.contains(&(fn_here.to_string(), code[k].text.clone()))
                        {
                            findings.push(Finding::error(
                                RULE_HASH_ITER,
                                path,
                                code[k].line,
                                format!(
                                    "for-loop over hash container `{}`: hash order is \
                                     nondeterministic; use a sorted Vec or BTreeMap",
                                    code[k].text
                                ),
                            ));
                            break;
                        }
                        k += 1;
                        guard2 += 1;
                    }
                }
            }
        }
    }

    // One construct can trip overlapping detectors (`for k in m.keys()`
    // matches both the receiver and the for-loop pattern): collapse to
    // one finding per (rule, line).
    findings.sort_by(|a, b| (a.line, a.rule.clone()).cmp(&(b.line, b.rule.clone())));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);

    // Apply allow directives: same line or the line above, matching rule,
    // with a reason.
    for f in &mut findings {
        if f.rule == RULE_ALLOW_REASON {
            continue;
        }
        for a in &allows {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                if let Some(reason) = &a.reason {
                    f.allowed = Some(reason.clone());
                }
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule.clone()).cmp(&(b.line, b.rule.clone())));
    findings
}

/// Recursively collects `.rs` files under `dir` into `acc`.
pub(crate) fn collect_rs(dir: &Path, acc: &mut Vec<PathBuf>) -> Result<(), CheckError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CheckError::Io(format!("read_dir {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckError::Io(format!("read_dir {}: {e}", dir.display())))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&p, acc)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            acc.push(p);
        }
    }
    Ok(())
}

/// Lints every in-scope `.rs` file under the workspace root.
///
/// The scan set is `crates/*/src/**` plus the umbrella `src/lib.rs`;
/// files the per-path scope excludes (tests, benches, `src/bin`) are
/// skipped inside [`lint_source`]. Paths in findings are repo-relative
/// with `/` separators, sorted, so output is stable across platforms.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, CheckError> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        collect_rs(&crates_dir, &mut files)?;
    }
    let umbrella = root.join("src").join("lib.rs");
    if umbrella.is_file() {
        files.push(umbrella);
    }
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        if scope_for(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(file)
            .map_err(|e| CheckError::Io(format!("read {}: {e}", file.display())))?;
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/engine.rs";

    #[test]
    fn wall_clock_flagged() {
        let src = "fn tick() { let t = Instant::now(); }";
        let f = lint_source(LIB, src);
        assert!(f.iter().any(|f| f.rule == RULE_WALL_CLOCK && f.line == 1));
    }

    #[test]
    fn wall_clock_ok_in_obs_and_bin() {
        let src = "fn tick() { let t = Instant::now(); }";
        assert!(lint_source("crates/obs/src/clock.rs", src).is_empty());
        assert!(lint_source("src/bin/slj.rs", src).is_empty());
    }

    #[test]
    fn print_flagged_outside_cli() {
        let src = "fn report() { println!(\"x\"); }";
        let f = lint_source("crates/sim/src/lib.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_NO_PRINT));
    }

    #[test]
    fn panic_flagged_but_not_in_tests() {
        let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n fn b(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let f = lint_source("crates/sim/src/lib.rs", src);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == RULE_LIB_PANIC).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn hot_alloc_only_in_hot_fns() {
        let src = "fn cold() { let v = Vec::new(); }\n\
                   fn warm_into(out: &mut Vec<u8>) { let v = Vec::new(); }\n";
        let f = lint_source("crates/imaging/src/filter.rs", src);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == RULE_HOT_ALLOC).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn hash_iteration_flagged_in_bayes() {
        let src = "fn walk() {\n let m: HashMap<u32, u32> = HashMap::new();\n \
                   for (k, v) in m.iter() { use_it(k, v); }\n}\n";
        let f = lint_source("crates/bayes/src/dbn.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_HASH_ITER && f.line == 3));
    }

    #[test]
    fn hash_membership_not_flagged() {
        let src = "fn member() {\n let m: HashSet<u32> = HashSet::new();\n \
                   if m.contains(&3) { hit(); }\n}\n";
        let f = lint_source("crates/runtime/src/pool.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HASH_ITER));
    }

    #[test]
    fn hash_par_only_in_imaging() {
        let src = "fn plain(m: &HashMap<u32, u32>) { for k in m.keys() { go(k); } }\n\
                   fn blur_par(m: &HashMap<u32, u32>) { for k in m.keys() { go(k); } }\n";
        let f = lint_source("crates/imaging/src/filter.rs", src);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == RULE_HASH_ITER).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "// slj-check: allow(determinism/no-wall-clock) — boot-time banner only\n\
                   fn tick() { let t = Instant::now(); }";
        let f = lint_source(LIB, src);
        let hit = f.iter().find(|f| f.rule == RULE_WALL_CLOCK);
        assert!(hit.is_some_and(|f| f.allowed.as_deref() == Some("boot-time banner only")));
        assert!(f.iter().all(|f| f.rule != RULE_ALLOW_REASON));
    }

    #[test]
    fn allow_without_reason_fails() {
        let src =
            "fn tick() { let t = Instant::now(); } // slj-check: allow(determinism/no-wall-clock)";
        let f = lint_source(LIB, src);
        assert!(f.iter().any(|f| f.rule == RULE_ALLOW_REASON));
        // The original finding is NOT suppressed.
        let hit = f.iter().find(|f| f.rule == RULE_WALL_CLOCK);
        assert!(hit.is_some_and(|f| f.allowed.is_none()));
    }

    #[test]
    fn out_of_scope_files_skipped() {
        let src = "fn t() { x.unwrap(); println!(\"y\"); }";
        assert!(lint_source("crates/core/tests/streaming.rs", src).is_empty());
        assert!(lint_source("src/bin/slj.rs", src).is_empty());
        assert!(lint_source("crates/core/benches/engine.rs", src).is_empty());
    }
}
