//! The over-approximate call graph and per-function effect sets.
//!
//! Calls are recovered from the flat token stream with three patterns:
//!
//! - `name(...)` — a free-function call; resolves to every free function
//!   with that name that the caller could actually reach (same crate, or
//!   `pub`);
//! - `.name(...)` — a method call; resolves to every method with that
//!   name (a documented over-approximation — receivers are untyped). A
//!   stoplist of ubiquitous `std` method names keeps `.clone()`-style
//!   calls from fanning out to unrelated impls. `self.name(...)` resolves
//!   precisely when the enclosing impl defines the method;
//! - `Type::name(...)` / `Self::name(...)` — a qualified call; resolves
//!   to methods of that impl type (lowercase first segments are treated
//!   as module paths and resolve like free functions).
//!
//! Known under-approximations (accepted; the direct PR 4 rules still
//! cover their effects at the definition site): turbofish calls
//! (`f::<T>(…)`), function pointers/closures passed as values, trait
//! objects dispatched through a stoplisted name, and macro bodies.
//!
//! Alongside edges, each function gets an effect set: panic sites,
//! allocation sites (with a cold-path heuristic: allocations in
//! error-construction statements do not count), wall-clock reads, hash
//! iterations, and — in `crates/serve` + `crates/runtime` — lock
//! acquisitions with a coarse guard-liveness range for the lock-order
//! analysis.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::symbols::SymbolTable;

/// One effect occurrence inside a function.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// What was found (`".unwrap()"`, `"format!"`, …).
    pub what: String,
}

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Token position in the file (orders acquisitions and call sites).
    pub pos: usize,
    /// 1-based source line.
    pub line: u32,
    /// Lock identity, e.g. `SessionTable.inner` (leading `self` is
    /// replaced by the impl type so the same field matches across
    /// methods).
    pub id: String,
    /// Token position the guard is live until: the end of the statement
    /// for a temporary, the end of the file's tokens for a `let`-bound
    /// guard (approximates "until end of function").
    pub live_end: usize,
}

/// Everything a single function does that the reachability rules track.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// `unwrap`/`expect`/`panic!`-family sites.
    pub panics: Vec<Site>,
    /// Allocation sites (cold error paths already excluded).
    pub allocs: Vec<Site>,
    /// `Instant::now`/`SystemTime` sites.
    pub wall: Vec<Site>,
    /// Hash-container iteration sites.
    pub hash: Vec<Site>,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
}

/// The workspace call graph: per-symbol callees, ordered call sites, and
/// effect sets.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per sym: resolved callee syms.
    pub callees: Vec<BTreeSet<usize>>,
    /// Per sym: `(token position, callee)` pairs in source order.
    pub call_sites: Vec<Vec<(usize, usize)>>,
    /// Per sym: its effect set.
    pub effects: Vec<Effects>,
}

/// Method names so common on `std` types that an untyped `.name(` call
/// would connect unrelated code; these never produce method edges (a
/// documented under-approximation).
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_modify",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "min",
    "min_by",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "send",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "splitn",
    "sqrt",
    "starts_with",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "write",
    "zip",
];

/// Keywords that look like `name(` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "as", "in", "move", "ref", "else", "break",
    "continue", "where", "unsafe", "let", "pub", "impl", "self", "super", "crate", "fn", "use",
    "mod", "dyn",
];

/// Hash-container iteration methods (mirrors the direct PR 4 rule).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn lowercase_start(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
}

impl CallGraph {
    /// Builds the graph over every function in `table`.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let n = table.syms.len();
        let mut graph = CallGraph {
            callees: vec![BTreeSet::new(); n],
            call_sites: vec![Vec::new(); n],
            effects: vec![Effects::default(); n],
        };
        for file_idx in 0..table.files.len() {
            scan_file(table, file_idx, &mut graph);
        }
        graph
    }
}

/// Resolution filter: a callee is reachable from `caller` when it lives
/// in the same crate or is `pub`.
fn visible(table: &SymbolTable, caller: usize, callee: usize) -> bool {
    let a = &table.syms[caller];
    let b = &table.syms[callee];
    b.is_pub || a.crate_name == b.crate_name
}

fn scan_file(table: &SymbolTable, file_idx: usize, graph: &mut CallGraph) {
    let file = &table.files[file_idx];
    let code = &file.code;
    let in_lock_scope =
        file.path.starts_with("crates/serve/") || file.path.starts_with("crates/runtime/");

    let id = |i: usize, name: &str| code.get(i).is_some_and(|t| t.is_ident(name));
    let p = |i: usize, ch: char| code.get(i).is_some_and(|t| t.is_punct(ch));
    let any_id = |i: usize, names: &[&str]| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
    };
    let sym_at = |i: usize| -> Option<usize> {
        file.owner
            .get(i)
            .copied()
            .flatten()
            .map(|local| table.global_of[file_idx][local])
            .filter(|&s| !table.syms[s].is_test)
    };

    // Pass A (hash rule): identifiers bound to hash containers, keyed by
    // owning sym.
    let mut hash_bound: BTreeSet<(usize, String)> = BTreeSet::new();
    for i in 0..code.len() {
        if !(id(i, "HashMap") || id(i, "HashSet")) {
            continue;
        }
        let Some(owner) = sym_at(i) else { continue };
        // `let [mut] name ... = ... HashMap ...` within the statement.
        let mut j = i;
        let mut steps = 0usize;
        while j > 0 && steps < 48 {
            j -= 1;
            steps += 1;
            let t = &code[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                let mut k = j + 1;
                if id(k, "mut") {
                    k += 1;
                }
                if let Some(name_tok) = code.get(k) {
                    if name_tok.kind == TokKind::Ident {
                        hash_bound.insert((owner, name_tok.text.clone()));
                    }
                }
                break;
            }
        }
        // Parameter style: `name: &HashMap<..>`.
        let mut k = i;
        while k > 0 && (p(k - 1, '&') || id(k - 1, "mut") || code[k - 1].kind == TokKind::Lifetime)
        {
            k -= 1;
        }
        if k >= 2 && p(k - 1, ':') && !p(k - 2, ':') {
            if let Some(name_tok) = code.get(k.wrapping_sub(2)) {
                if name_tok.kind == TokKind::Ident {
                    hash_bound.insert((owner, name_tok.text.clone()));
                }
            }
        }
    }

    for i in 0..code.len() {
        let Some(caller) = sym_at(i) else { continue };
        let t = &code[i];

        // ---- call edges ----
        if t.kind == TokKind::Ident && lowercase_start(&t.text) {
            let prev_dot = i > 0 && code[i - 1].is_punct('.');
            let prev_colon = i > 0 && code[i - 1].is_punct(':');
            // Qualified call `Seg::name(` — detected at the *name*, so a
            // bare-call match below cannot double-fire.
            if prev_colon && i >= 2 && p(i - 2, ':') && p(i + 1, '(') {
                if let Some(seg) = code.get(i.wrapping_sub(3)) {
                    if seg.kind == TokKind::Ident {
                        let targets = resolve_qualified(table, caller, &seg.text, &t.text);
                        add_calls(graph, caller, i, &targets);
                    }
                }
            } else if prev_dot && p(i + 1, '(') {
                let recv_self = i >= 2 && code[i - 2].is_ident("self");
                let targets = resolve_method(table, caller, &t.text, recv_self);
                add_calls(graph, caller, i, &targets);
            } else if !prev_dot
                && !prev_colon
                && p(i + 1, '(')
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && !(i > 0 && code[i - 1].is_ident("fn"))
            {
                let targets: Vec<usize> = table
                    .by_name
                    .get(&t.text)
                    .map(|cands| {
                        cands
                            .iter()
                            .copied()
                            .filter(|&s| {
                                table.syms[s].self_type.is_none()
                                    && !table.syms[s].is_test
                                    && visible(table, caller, s)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                add_calls(graph, caller, i, &targets);
            }
        }

        // ---- effects ----
        let eff = &mut graph.effects[caller];

        // Panics (mirrors `robustness/no-panic-in-lib`).
        if p(i, '.') && any_id(i + 1, &["unwrap", "expect"]) && p(i + 2, '(') {
            let line = code.get(i + 1).map_or(t.line, |n| n.line);
            let what = code.get(i + 1).map(|n| n.text.clone()).unwrap_or_default();
            eff.panics.push(Site {
                line,
                what: format!(".{what}()"),
            });
        }
        if any_id(i, &["panic", "unreachable", "todo", "unimplemented"]) && p(i + 1, '!') {
            eff.panics.push(Site {
                line: t.line,
                what: format!("{}!", t.text),
            });
        }

        // Allocations (mirrors `perf/no-hot-path-alloc`), unless the
        // statement is building an error (cold path by construction).
        let alloc_hit: Option<&str> =
            if id(i, "Vec") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "new") {
                Some("Vec::new()")
            } else if id(i, "vec") && p(i + 1, '!') {
                Some("vec!")
            } else if p(i, '.') && id(i + 1, "to_vec") && p(i + 2, '(') {
                Some(".to_vec()")
            } else if p(i, '.') && id(i + 1, "clone") && p(i + 2, '(') {
                Some(".clone()")
            } else if id(i, "String") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "from") {
                Some("String::from")
            } else if id(i, "format") && p(i + 1, '!') {
                Some("format!")
            } else if p(i, '.') && any_id(i + 1, &["to_string", "to_owned"]) && p(i + 2, '(') {
                Some(".to_string()/.to_owned()")
            } else if id(i, "Box") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "new") {
                Some("Box::new()")
            } else {
                None
            };
        if let Some(what) = alloc_hit {
            if !cold_statement(code, i) {
                let line = if p(i, '.') {
                    code.get(i + 1).map_or(t.line, |n| n.line)
                } else {
                    t.line
                };
                eff.allocs.push(Site {
                    line,
                    what: what.to_string(),
                });
            }
        }

        // Wall clock (mirrors `determinism/no-wall-clock`, but collected
        // in every crate — obs included — so timing helpers show up in
        // chains and must be allowed explicitly at the site).
        if id(i, "Instant") && p(i + 1, ':') && p(i + 2, ':') && id(i + 3, "now") {
            eff.wall.push(Site {
                line: t.line,
                what: "Instant::now()".to_string(),
            });
        }
        if id(i, "SystemTime") {
            eff.wall.push(Site {
                line: t.line,
                what: "SystemTime".to_string(),
            });
        }

        // Hash iteration (mirrors `determinism/no-hash-iteration`).
        if p(i, '.')
            && code.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
            })
            && p(i + 2, '(')
            && i > 0
            && code[i - 1].kind == TokKind::Ident
            && hash_bound.contains(&(caller, code[i - 1].text.clone()))
        {
            let line = code.get(i + 1).map_or(t.line, |n| n.line);
            eff.hash.push(Site {
                line,
                what: format!("{}.{}()", code[i - 1].text, code[i + 1].text),
            });
        }
        if id(i, "for") {
            let mut j = i + 1;
            let mut guard = 0usize;
            while j < code.len() && guard < 24 && !code[j].is_ident("in") {
                j += 1;
                guard += 1;
            }
            if j < code.len() && code[j].is_ident("in") {
                let mut k = j + 1;
                let mut guard2 = 0usize;
                while k < code.len() && guard2 < 16 && !code[k].is_punct('{') {
                    if code[k].kind == TokKind::Ident
                        && hash_bound.contains(&(caller, code[k].text.clone()))
                    {
                        eff.hash.push(Site {
                            line: code[k].line,
                            what: format!("for … in {}", code[k].text),
                        });
                        break;
                    }
                    k += 1;
                    guard2 += 1;
                }
            }
        }

        // Lock acquisitions (serve + runtime only).
        if in_lock_scope {
            if id(i, "lock_unpoisoned") && p(i + 1, '(') {
                if let Some(lock_id) = lock_arg_id(table, caller, code, i + 2) {
                    eff.locks.push(lock_site(code, i, t.line, lock_id));
                }
            }
            if p(i, '.')
                && any_id(i + 1, &["lock", "read", "write"])
                && p(i + 2, '(')
                && p(i + 3, ')')
            {
                if let Some(lock_id) = receiver_path(table, caller, code, i) {
                    let line = code.get(i + 1).map_or(t.line, |n| n.line);
                    eff.locks.push(lock_site(code, i, line, lock_id));
                }
            }
        }
    }

    // Dedup panic/alloc/wall/hash sites per (line, what): one construct
    // can trip overlapping detectors.
    for local in 0..file.fns.len() {
        let sym = table.global_of[file_idx][local];
        let eff = &mut graph.effects[sym];
        for list in [
            &mut eff.panics,
            &mut eff.allocs,
            &mut eff.wall,
            &mut eff.hash,
        ] {
            list.sort_by(|a, b| (a.line, a.what.clone()).cmp(&(b.line, b.what.clone())));
            list.dedup_by(|a, b| a.line == b.line && a.what == b.what);
        }
    }
}

fn add_calls(graph: &mut CallGraph, caller: usize, pos: usize, targets: &[usize]) {
    for &t in targets {
        graph.callees[caller].insert(t);
        graph.call_sites[caller].push((pos, t));
    }
}

/// `Type::name(` / `module::name(` / `Self::name(` resolution.
fn resolve_qualified(table: &SymbolTable, caller: usize, seg: &str, name: &str) -> Vec<usize> {
    let ty: Option<String> = if seg == "Self" {
        table.syms[caller].self_type.clone()
    } else if !lowercase_start(seg) {
        Some(seg.to_string())
    } else {
        None
    };
    let Some(cands) = table.by_name.get(name) else {
        return Vec::new();
    };
    match ty {
        Some(ty) => cands
            .iter()
            .copied()
            .filter(|&s| {
                table.syms[s].self_type.as_deref() == Some(ty.as_str())
                    && !table.syms[s].is_test
                    && visible(table, caller, s)
            })
            .collect(),
        // Module path: behaves like a free-function call.
        None => cands
            .iter()
            .copied()
            .filter(|&s| {
                table.syms[s].self_type.is_none()
                    && !table.syms[s].is_test
                    && visible(table, caller, s)
            })
            .collect(),
    }
}

/// `.name(` resolution: all methods with that name, stoplisted; a
/// `self.name(` receiver resolves precisely within the enclosing impl.
fn resolve_method(table: &SymbolTable, caller: usize, name: &str, recv_self: bool) -> Vec<usize> {
    let Some(cands) = table.by_name.get(name) else {
        return Vec::new();
    };
    if recv_self {
        if let Some(ty) = table.syms[caller].self_type.as_deref() {
            let own: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&s| {
                    table.syms[s].self_type.as_deref() == Some(ty) && !table.syms[s].is_test
                })
                .collect();
            if !own.is_empty() {
                return own;
            }
        }
    }
    if STD_METHODS.contains(&name) {
        return Vec::new();
    }
    cands
        .iter()
        .copied()
        .filter(|&s| {
            table.syms[s].self_type.is_some() && !table.syms[s].is_test && visible(table, caller, s)
        })
        .collect()
}

/// Whether the statement containing token `i` is constructing an error
/// (allocations there are cold by definition: they run once on failure).
fn cold_statement(code: &[Tok], i: usize) -> bool {
    let mut j = i;
    let mut steps = 0usize;
    while j > 0 && steps < 40 {
        j -= 1;
        steps += 1;
        let t = &code[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "Err" | "map_err" | "ok_or" | "ok_or_else")
        {
            return true;
        }
    }
    false
}

/// Identity of the lock in `lock_unpoisoned(&self.inner)`-style calls:
/// the ident path inside the parens, `self` replaced by the impl type.
fn lock_arg_id(table: &SymbolTable, caller: usize, code: &[Tok], start: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = start;
    let mut guard = 0usize;
    while j < code.len() && guard < 12 && !code[j].is_punct(')') {
        if code[j].kind == TokKind::Ident {
            parts.push(code[j].text.clone());
        }
        j += 1;
        guard += 1;
    }
    canonical_lock_id(table, caller, parts)
}

/// Identity of the receiver in `self.inner.lock()`-style calls: walk the
/// `ident . ident . …` chain left of the dot at `dot`.
fn receiver_path(table: &SymbolTable, caller: usize, code: &[Tok], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // points at the `.` before lock/read/write
    while j >= 1 && code[j - 1].kind == TokKind::Ident {
        parts.push(code[j - 1].text.clone());
        if j >= 2 && code[j - 2].is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    canonical_lock_id(table, caller, parts)
}

fn canonical_lock_id(table: &SymbolTable, caller: usize, mut parts: Vec<String>) -> Option<String> {
    if parts.is_empty() {
        return None;
    }
    if parts[0] == "self" {
        if let Some(ty) = table.syms[caller].self_type.as_deref() {
            parts[0] = ty.to_string();
        }
    }
    Some(parts.join("."))
}

fn lock_site(code: &[Tok], pos: usize, line: u32, id: String) -> LockSite {
    // Statement start: is it a `let` binding (guard lives on) or a
    // temporary (guard dies at the `;`)?
    let mut k = pos;
    let mut steps = 0usize;
    while k > 0 && steps < 64 {
        let t = &code[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        k -= 1;
        steps += 1;
    }
    let is_let = code.get(k).is_some_and(|t| t.is_ident("let"));
    let live_end = if is_let {
        usize::MAX
    } else {
        let mut e = pos;
        while e < code.len() && !code[e].is_punct(';') {
            e += 1;
        }
        e
    };
    LockSite {
        pos,
        line,
        id,
        live_end,
    }
}

/// Fixpoint of "locks this function may eventually acquire, transitively
/// through calls" — the interprocedural half of the lock-order analysis.
pub fn locks_eventually(table: &SymbolTable, graph: &CallGraph) -> Vec<BTreeSet<String>> {
    let n = table.syms.len();
    let mut out: Vec<BTreeSet<String>> = (0..n)
        .map(|s| {
            graph.effects[s]
                .locks
                .iter()
                .map(|l| l.id.clone())
                .collect()
        })
        .collect();
    // Iterate to fixpoint; lock sets are tiny, the graph is acyclic-ish.
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for caller in 0..n {
            let mut add: Vec<String> = Vec::new();
            for &callee in &graph.callees[caller] {
                for id in &out[callee] {
                    if !out[caller].contains(id) {
                        add.push(id.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                out[caller].extend(add);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        SymbolTable::build(&sources)
    }

    fn sym(table: &SymbolTable, name: &str) -> usize {
        table.by_name[name][0]
    }

    #[test]
    fn free_fn_calls_resolve_cross_crate_when_pub() {
        let t = table(&[
            (
                "crates/a/src/lib.rs",
                "pub fn api() { helper(); }\nfn helper() {}",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn caller() { api(); helper(); }",
            ),
        ]);
        let g = CallGraph::build(&t);
        let caller = sym(&t, "caller");
        assert!(g.callees[caller].contains(&sym(&t, "api")));
        // `helper` is private to crate a: not visible from crate b.
        assert!(!g.callees[caller].contains(&sym(&t, "helper")));
        // Within crate a the private call resolves.
        assert!(g.callees[sym(&t, "api")].contains(&sym(&t, "helper")));
    }

    #[test]
    fn self_method_calls_resolve_to_own_impl() {
        let t = table(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { pub fn go(&self) { self.work(); } fn work(&self) {} }\n\
             impl B { fn work(&self) {} }",
        )]);
        let g = CallGraph::build(&t);
        let go = sym(&t, "go");
        let works = &t.by_name["work"];
        let a_work = works
            .iter()
            .copied()
            .find(|&s| t.syms[s].self_type.as_deref() == Some("A"))
            .unwrap();
        let b_work = works
            .iter()
            .copied()
            .find(|&s| t.syms[s].self_type.as_deref() == Some("B"))
            .unwrap();
        assert!(g.callees[go].contains(&a_work));
        assert!(!g.callees[go].contains(&b_work));
    }

    #[test]
    fn qualified_and_stoplisted_calls() {
        let t = table(&[(
            "crates/a/src/lib.rs",
            "struct W;\n\
             impl W { pub fn new() -> W { W } pub fn clone_into_scratch(&self) {} }\n\
             pub fn build() { let w = W::new(); let c = w.clone(); }",
        )]);
        let g = CallGraph::build(&t);
        let build = sym(&t, "build");
        assert!(g.callees[build].contains(&sym(&t, "new")));
        // `.clone()` is stoplisted: no edge even though nothing matches.
        assert_eq!(g.callees[build].len(), 1);
    }

    #[test]
    fn effects_collected_per_fn() {
        let t = table(&[(
            "crates/a/src/lib.rs",
            "fn panicky(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn allocy() { let v = Vec::new(); touch(v); }\n\
             fn cold_ok() -> Result<(), String> { Err(format!(\"x\")) }\n\
             fn timed() { let t = Instant::now(); use_it(t); }",
        )]);
        let g = CallGraph::build(&t);
        assert_eq!(g.effects[sym(&t, "panicky")].panics.len(), 1);
        assert_eq!(g.effects[sym(&t, "allocy")].allocs.len(), 1);
        // The `format!` inside `Err(...)` is a cold error path.
        assert!(g.effects[sym(&t, "cold_ok")].allocs.is_empty());
        assert_eq!(g.effects[sym(&t, "timed")].wall.len(), 1);
    }

    #[test]
    fn lock_sites_and_liveness() {
        let t = table(&[(
            "crates/serve/src/session.rs",
            "struct Table;\n\
             impl Table {\n\
               fn checkout(&self) { let g = lock_unpoisoned(&self.inner); hold(g); other(); }\n\
               fn quick(&self) { lock_unpoisoned(&self.inner).touch(); after(); }\n\
             }",
        )]);
        let g = CallGraph::build(&t);
        let checkout = sym(&t, "checkout");
        let quick = sym(&t, "quick");
        assert_eq!(g.effects[checkout].locks.len(), 1);
        assert_eq!(g.effects[checkout].locks[0].id, "Table.inner");
        assert_eq!(g.effects[checkout].locks[0].live_end, usize::MAX);
        // Temporary guard: dies at the end of its statement.
        assert_ne!(g.effects[quick].locks[0].live_end, usize::MAX);
    }

    #[test]
    fn locks_eventually_is_transitive() {
        let t = table(&[(
            "crates/serve/src/server.rs",
            "struct S;\n\
             impl S {\n\
               fn outer(&self) { self.mid(); }\n\
               fn mid(&self) { self.leaf(); }\n\
               fn leaf(&self) { let q = lock_unpoisoned(&self.queue); use_it(q); }\n\
             }",
        )]);
        let g = CallGraph::build(&t);
        let ev = locks_eventually(&t, &g);
        assert!(ev[sym(&t, "outer")].contains("S.queue"));
    }
}
