//! The schema-drift check (`slj check --schemas`).
//!
//! Every persisted artifact in the workspace carries a `"schema": N`
//! version, and each layer hard-codes its `N` in a named constant. This
//! check cross-verifies those constants against committed fixture files,
//! so bumping a writer without regenerating (or deliberately versioning)
//! the committed artifact fails fast instead of silently desyncing CI
//! baselines from the code.
//!
//! | layer | constant | committed fixture |
//! |---|---|---|
//! | trace | `TRACE_SCHEMA_VERSION` (`crates/core/src/trace.rs`) | `tests/fixtures/schemas/trace.jsonl` |
//! | bench | `BENCH_SCHEMA_VERSION` (`src/bin/slj.rs`) | `BENCH_PR7.json` |
//! | loadgen | `LOADGEN_SCHEMA_VERSION` (`crates/serve/src/loadgen.rs`) | `BENCH_PR8.json` |
//! | metrics | `METRICS_SCHEMA_VERSION` (`crates/obs/src/metrics.rs`) | `tests/fixtures/schemas/metrics.json` |
//! | check-report | `REPORT_SCHEMA_VERSION` (`crates/check/src/report.rs`) | `tests/fixtures/schemas/check-report.json` |
//! | check-baseline | `BASELINE_SCHEMA_VERSION` (`crates/check/src/baseline.rs`) | `check-baseline.json` |
//! | corpus-trace-bridge | `BRIDGE_TRACE_SCHEMA` (`crates/corpus/src/ingest.rs`) | `tests/fixtures/schemas/trace.jsonl` |
//! | corpus-bench | `CORPUS_BENCH_SCHEMA_VERSION` (`src/bin/slj.rs`) | `BENCH_PR10.json` |
//!
//! The corpus trace bridge deliberately shares the trace layer's
//! fixture: it *consumes* `slj trace` JSONL, so a trace-schema bump
//! that forgets to update the bridge shows up as drift here.
//!
//! The HTTP wire format is deliberately absent: it has no `"schema"`
//! marker — `crates/serve/tests/protocol.rs` pins it at the byte level.
//!
//! Constants are read straight out of the source with the crate's own
//! lexer (`const NAME: u64 = <number>`), fixture versions with a text
//! scan for the first `"schema": N` — no build step, no macro tricks.

use std::path::Path;

use crate::lexer::{lex, TokKind};
use crate::report::Finding;
use crate::CheckError;

/// Emitted when a constant and its fixture disagree.
pub const RULE_SCHEMA_DRIFT: &str = "schema/drift";
/// Emitted when a source file no longer defines its schema constant.
pub const RULE_SCHEMA_CONST: &str = "schema/missing-const";
/// Emitted when a committed fixture is missing or carries no version.
pub const RULE_SCHEMA_FIXTURE: &str = "schema/missing-fixture";

/// Schema-check rule ids with one-line descriptions (`--list-rules`).
pub const SCHEMA_RULES: &[(&str, &str)] = &[
    (
        RULE_SCHEMA_DRIFT,
        "hard-coded schema constants must match committed fixtures",
    ),
    (
        RULE_SCHEMA_CONST,
        "each versioned layer must define its *_SCHEMA_VERSION constant",
    ),
    (
        RULE_SCHEMA_FIXTURE,
        "each versioned layer must have a committed fixture with a schema marker",
    ),
];

/// One cross-verified layer.
struct Layer {
    name: &'static str,
    src: &'static str,
    const_name: &'static str,
    fixture: &'static str,
}

const LAYERS: &[Layer] = &[
    Layer {
        name: "trace",
        src: "crates/core/src/trace.rs",
        const_name: "TRACE_SCHEMA_VERSION",
        fixture: "tests/fixtures/schemas/trace.jsonl",
    },
    Layer {
        name: "bench",
        src: "src/bin/slj.rs",
        const_name: "BENCH_SCHEMA_VERSION",
        fixture: "BENCH_PR7.json",
    },
    Layer {
        name: "loadgen",
        src: "crates/serve/src/loadgen.rs",
        const_name: "LOADGEN_SCHEMA_VERSION",
        fixture: "BENCH_PR8.json",
    },
    Layer {
        name: "metrics",
        src: "crates/obs/src/metrics.rs",
        const_name: "METRICS_SCHEMA_VERSION",
        fixture: "tests/fixtures/schemas/metrics.json",
    },
    Layer {
        name: "check-report",
        src: "crates/check/src/report.rs",
        const_name: "REPORT_SCHEMA_VERSION",
        fixture: "tests/fixtures/schemas/check-report.json",
    },
    Layer {
        name: "check-baseline",
        src: "crates/check/src/baseline.rs",
        const_name: "BASELINE_SCHEMA_VERSION",
        fixture: "check-baseline.json",
    },
    Layer {
        name: "corpus-trace-bridge",
        src: "crates/corpus/src/ingest.rs",
        const_name: "BRIDGE_TRACE_SCHEMA",
        fixture: "tests/fixtures/schemas/trace.jsonl",
    },
    Layer {
        name: "corpus-bench",
        src: "src/bin/slj.rs",
        const_name: "CORPUS_BENCH_SCHEMA_VERSION",
        fixture: "BENCH_PR10.json",
    },
];

/// Finds `const NAME ... = <number>` in source text; returns the value
/// and the line it is declared on.
fn const_value(source: &str, name: &str) -> Option<(u64, u32)> {
    let toks = lex(source);
    let code: Vec<_> = toks
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    for i in 0..code.len() {
        if !code[i].is_ident("const") || !code.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            continue;
        }
        let line = code[i].line;
        // Walk to the `=` then the first number before the `;`.
        let mut j = i + 2;
        while j < code.len() && !code[j].is_punct('=') && !code[j].is_punct(';') {
            j += 1;
        }
        while j < code.len() && !code[j].is_punct(';') {
            if code[j].kind == TokKind::Number {
                let digits: String = code[j]
                    .text
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if let Ok(v) = digits.parse::<u64>() {
                    return Some((v, line));
                }
            }
            j += 1;
        }
    }
    None
}

/// Finds the first `"schema": N` in fixture text (JSON or JSONL).
fn fixture_version(text: &str) -> Option<u64> {
    let at = text.find("\"schema\"")?;
    let rest = text[at + "\"schema\"".len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<u64>().ok()
}

/// Cross-verifies every layer's schema constant against its fixture.
///
/// Findings use the usual [`Finding`] shape so `--json` output, allow
/// handling, and CI wiring are shared with the other analyzers.
pub fn check_schemas(root: &Path) -> Result<Vec<Finding>, CheckError> {
    let mut findings = Vec::new();
    for layer in LAYERS {
        let src_path = root.join(layer.src);
        // An unreadable source file reports as a missing constant — the
        // layer's version can no longer be verified either way.
        let declared = std::fs::read_to_string(&src_path)
            .ok()
            .and_then(|source| const_value(&source, layer.const_name));

        let Some((const_v, const_line)) = declared else {
            findings.push(Finding::error(
                RULE_SCHEMA_CONST,
                layer.src,
                0,
                format!(
                    "layer `{}`: constant `{}` not found in {}",
                    layer.name, layer.const_name, layer.src
                ),
            ));
            continue;
        };

        let fixture_path = root.join(layer.fixture);
        let fixture_v = std::fs::read_to_string(&fixture_path)
            .ok()
            .and_then(|text| fixture_version(&text));
        let Some(fixture_v) = fixture_v else {
            findings.push(Finding::error(
                RULE_SCHEMA_FIXTURE,
                layer.fixture,
                0,
                format!(
                    "layer `{}`: fixture {} is missing or has no \"schema\" marker",
                    layer.name, layer.fixture
                ),
            ));
            continue;
        };

        if const_v != fixture_v {
            findings.push(Finding::error(
                RULE_SCHEMA_DRIFT,
                layer.src,
                const_line,
                format!(
                    "layer `{}`: {} = {const_v} but committed fixture {} says \
                     \"schema\": {fixture_v}; regenerate the fixture or revert the bump",
                    layer.name, layer.const_name, layer.fixture
                ),
            ));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_extraction() {
        let src = "/// docs\npub const TRACE_SCHEMA_VERSION: u64 = 3;\nconst OTHER: u64 = 9;\n";
        assert_eq!(const_value(src, "TRACE_SCHEMA_VERSION"), Some((3, 2)));
        assert_eq!(const_value(src, "OTHER"), Some((9, 3)));
        assert_eq!(const_value(src, "MISSING"), None);
        // A mention in a comment or string is not a declaration.
        let decoy = "// const FAKE_SCHEMA_VERSION: u64 = 7;\nlet s = \"const X = 1\";\n";
        assert_eq!(const_value(decoy, "FAKE_SCHEMA_VERSION"), None);
    }

    #[test]
    fn fixture_scanning() {
        assert_eq!(fixture_version("{\"schema\":5,\"quick\":false}"), Some(5));
        assert_eq!(fixture_version("{ \"schema\" : 12 , \"x\": 1}"), Some(12));
        assert_eq!(fixture_version("{\"no_version\":true}"), None);
    }

    #[test]
    fn drift_detected_on_synthetic_tree() {
        let dir = std::env::temp_dir().join("slj-check-schemas-test");
        let src_dir = dir.join("crates/core/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("trace.rs"),
            "pub const TRACE_SCHEMA_VERSION: u64 = 4;\n",
        )
        .unwrap();
        let fx_dir = dir.join("tests/fixtures/schemas");
        std::fs::create_dir_all(&fx_dir).unwrap();
        std::fs::write(fx_dir.join("trace.jsonl"), "{\"schema\":3,\"frame\":0}\n").unwrap();

        let findings = check_schemas(&dir).unwrap();
        let trace = findings
            .iter()
            .find(|f| f.rule == RULE_SCHEMA_DRIFT && f.file == "crates/core/src/trace.rs")
            .unwrap();
        assert!(trace.message.contains("= 4"), "{}", trace.message);
        assert!(trace.message.contains("\"schema\": 3"), "{}", trace.message);
        // The other layers are simply missing in this synthetic tree.
        assert!(findings
            .iter()
            .all(|f| f.rule != RULE_SCHEMA_CONST || f.file != "crates/core/src/trace.rs"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
