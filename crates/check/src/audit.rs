//! The model-artifact auditor: static validation of trained artifacts.
//!
//! A trained `slj-pose-model v1` file is the paper's learned parameter
//! set — per-pose CPTs flattened into transition tables plus the
//! pipeline configuration — and it is served untrusted: training runs
//! elsewhere, the file travels, and a corrupt or hand-edited artifact
//! must be rejected *before* inference, not mid-stream. The auditor
//! re-reads the text format independently of `slj-core`'s loader
//! (which bails on the first structural error) so that one corruption
//! does not mask the rest: every table is still shape-checked, every
//! row still summed.
//!
//! Checks, as rule ids:
//!
//! - `model/format` — magic header, config line, table headers parse;
//! - `model/shape` — table dimensions match the paper's model (4 jumping
//!   stages, 22 poses, 5 body parts);
//! - `model/negative-entry` — probabilities are finite and non-negative;
//! - `model/cpt-row-sum` — every CPT row sums to 1 within `1e-9`
//!   (row-stochastic transition matrices included);
//! - `model/area-code-range` — `part_given_pose` columns cover exactly
//!   area codes `0..=partitions` (the paper's 8 waist-centred areas);
//! - `model/threshold-range` — `Th_Object` in `0..=255`, `Th_Pose` in
//!   `[0, 1]`;
//! - `model/config-range` — remaining configuration scalars in range;
//! - `model/unreachable-pose` — every pose is reachable from the
//!   marginal or some transition row, and the Unknown fallback is
//!   reachable (`Th_Pose > 0`).
//!
//! Model files carry an embedded taxonomy block; its pose/stage/part
//! counts drive the shape checks, so an artifact for a different
//! exercise audits against *its own* vocabulary. Files without the
//! block (written before taxonomies were data) audit against the
//! paper's 22/4/5 defaults. Standalone taxonomy artifacts
//! (`slj-taxonomy v1`) are audited too — structural problems surface
//! as `taxonomy/format`, `taxonomy/partition`, `taxonomy/row-sum` or
//! `taxonomy/unknown-pose` findings.

use crate::report::Finding;
use crate::CheckError;
use std::path::Path;

/// Pose classes in the paper's model (22 + Unknown fallback); the
/// fallback shape when a model file carries no taxonomy block.
pub const POSES: usize = 22;
/// Jumping stages (§4 of the paper); taxonomy-block fallback.
pub const STAGES: usize = 4;
/// Skeleton body parts observed per frame; taxonomy-block fallback.
pub const PARTS: usize = 5;
/// CPT row-sum tolerance.
pub const EPS: f64 = 1e-9;

const MAGIC: &str = "slj-pose-model v1";

/// One parsed table: header line number, per-row line numbers, values.
struct Table {
    header_line: u32,
    declared_rows: usize,
    declared_cols: usize,
    rows: Vec<(u32, Vec<f64>)>,
}

fn err(rule: &str, artifact: &str, line: u32, message: String) -> Finding {
    Finding::error(rule, artifact, line, message)
}

/// Audits a model artifact given as text.
///
/// `artifact` is the path used in findings. With `config_only` set, only
/// the configuration line is validated (the `--config` mode); the file
/// may then be either a full model or a bare `config ...` line.
pub fn audit_model_text(artifact: &str, text: &str, config_only: bool) -> Vec<Finding> {
    // A standalone taxonomy artifact is a valid audit target for the
    // same flag: dispatch on its magic.
    if text.lines().next().map(str::trim) == Some(slj_taxonomy::MAGIC) {
        return audit_taxonomy_text(artifact, text);
    }
    let mut findings = Vec::new();
    let lines: Vec<&str> = text.lines().collect();

    // Locate the config line: line 2 of a full model, or the first line
    // starting with `config ` in a bare config file.
    let mut config_line: Option<(u32, &str)> = None;
    let full_model = lines.first().map(|l| l.trim()) == Some(MAGIC);
    if full_model {
        match lines.get(1) {
            Some(l) if l.trim_start().starts_with("config ") => {
                config_line = Some((2, l));
            }
            _ => findings.push(err(
                "model/format",
                artifact,
                2,
                "missing `config ...` line after the magic header".into(),
            )),
        }
    } else if config_only {
        for (i, l) in lines.iter().enumerate() {
            if l.trim_start().starts_with("config ") {
                config_line = Some((i as u32 + 1, l));
                break;
            }
        }
        if config_line.is_none() {
            findings.push(err(
                "model/format",
                artifact,
                1,
                "no `config ...` line found".into(),
            ));
        }
    } else {
        findings.push(err(
            "model/format",
            artifact,
            1,
            format!("missing magic header {MAGIC:?}"),
        ));
        return findings;
    }

    // Validate the configuration scalars.
    let mut partitions: usize = 8;
    let mut th_pose: f64 = f64::NAN;
    if let Some((cfg_line_no, cfg)) = config_line {
        let audit = audit_config_tokens(artifact, cfg_line_no, cfg, &mut partitions, &mut th_pose);
        findings.extend(audit);
    }
    if config_only {
        return findings;
    }

    // Optional embedded taxonomy block: shape expectations come from it
    // when present, from the paper's constants when not.
    let mut poses = POSES;
    let mut stages = STAGES;
    let mut n_parts = PARTS;
    let mut i = 2usize; // 0-based index: blocks start after magic+config
    if let Some(header) = lines.get(i).map(|l| l.trim()) {
        if header.starts_with("taxonomy ") {
            let header_line = i as u32 + 1;
            let declared = header
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.strip_prefix("lines="))
                .and_then(|v| v.parse::<usize>().ok());
            match declared {
                Some(count) if i + 1 + count <= lines.len() => {
                    let block = lines[i + 1..i + 1 + count].join("\n");
                    match slj_taxonomy::Taxonomy::from_artifact_str(&block) {
                        Ok(taxonomy) => {
                            poses = taxonomy.pose_count();
                            stages = taxonomy.stage_count();
                            n_parts = taxonomy.parts();
                        }
                        Err(e) => findings.push(err(
                            e.code,
                            artifact,
                            header_line,
                            format!("embedded taxonomy: {}", e.message),
                        )),
                    }
                    i += 1 + count;
                }
                _ => {
                    findings.push(err(
                        "model/format",
                        artifact,
                        header_line,
                        format!("malformed or truncated taxonomy block header {header:?}"),
                    ));
                    i += 1;
                }
            }
        }
    }

    // Parse tables tolerantly: resynchronise on every `table` header so
    // one bad table cannot hide the rest.
    let mut tables: Vec<(String, Table)> = Vec::new();
    while i < lines.len() {
        let line = lines[i].trim();
        if !line.starts_with("table ") {
            if !line.is_empty() {
                findings.push(err(
                    "model/format",
                    artifact,
                    i as u32 + 1,
                    "unexpected text outside a table".into(),
                ));
            }
            i += 1;
            continue;
        }
        let header_line = i as u32 + 1;
        let mut parts = line.split_whitespace();
        let _table_kw = parts.next();
        let name = parts.next().unwrap_or("").to_string();
        let dim = |tok: Option<&str>, key: &str| -> Option<usize> {
            let (k, v) = tok?.split_once('=')?;
            if k != key {
                return None;
            }
            v.parse::<usize>().ok()
        };
        let declared_rows = dim(parts.next(), "rows");
        let declared_cols = dim(parts.next(), "cols");
        let (Some(declared_rows), Some(declared_cols)) = (declared_rows, declared_cols) else {
            findings.push(err(
                "model/format",
                artifact,
                header_line,
                format!(
                    "malformed table header for {name:?}; expected `table <name> rows=R cols=C`"
                ),
            ));
            i += 1;
            continue;
        };
        let mut rows: Vec<(u32, Vec<f64>)> = Vec::new();
        i += 1;
        while i < lines.len() && !lines[i].trim().starts_with("table ") {
            let row_line = lines[i].trim();
            if !row_line.is_empty() {
                let mut vals = Vec::new();
                let mut bad = false;
                for tok in row_line.split_whitespace() {
                    match tok.parse::<f64>() {
                        Ok(v) => vals.push(v),
                        Err(_) => {
                            findings.push(err(
                                "model/format",
                                artifact,
                                i as u32 + 1,
                                format!("table {name}: unparseable value {tok:?}"),
                            ));
                            bad = true;
                            break;
                        }
                    }
                }
                if !bad {
                    rows.push((i as u32 + 1, vals));
                }
            }
            i += 1;
        }
        tables.push((
            name,
            Table {
                header_line,
                declared_rows,
                declared_cols,
                rows,
            },
        ));
    }

    // Expected shapes given the taxonomy counts and `partitions`.
    let expected: &[(&str, usize, usize)] = &[
        ("stage_transition", stages, stages),
        ("pose_transition", poses * stages, poses),
        ("pose_transition_nostage", poses, poses),
        ("pose_marginal", 1, poses),
        ("part_given_pose", n_parts * poses, partitions + 1),
    ];
    for (name, want_rows, want_cols) in expected {
        let Some((_, table)) = tables.iter().find(|(n, _)| n == name) else {
            findings.push(err(
                "model/format",
                artifact,
                lines.len() as u32,
                format!("missing table {name}"),
            ));
            continue;
        };
        let shape_rule = if *name == "part_given_pose" {
            // A column-count mismatch here means area codes outside
            // `0..=partitions`.
            "model/area-code-range"
        } else {
            "model/shape"
        };
        if table.declared_rows != *want_rows || table.rows.len() != *want_rows {
            findings.push(err(
                "model/shape",
                artifact,
                table.header_line,
                format!(
                    "table {name}: expected {want_rows} rows, header declares {} and {} are present",
                    table.declared_rows,
                    table.rows.len()
                ),
            ));
        }
        let cols_bad = table.declared_cols != *want_cols
            || table.rows.iter().any(|(_, r)| r.len() != *want_cols);
        if cols_bad {
            findings.push(err(
                shape_rule,
                artifact,
                table.header_line,
                format!(
                    "table {name}: expected {want_cols} cols (area codes 0..={} for part_given_pose), header declares {}",
                    partitions, table.declared_cols
                ),
            ));
        }
        // Entry and row-sum checks on whatever rows are present.
        for (row_idx, (line_no, row)) in table.rows.iter().enumerate() {
            let mut sum = 0.0f64;
            let mut row_ok = true;
            for (col, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    findings.push(err(
                        "model/negative-entry",
                        artifact,
                        *line_no,
                        format!("table {name} row {row_idx} col {col}: non-finite entry {v}"),
                    ));
                    row_ok = false;
                } else if *v < 0.0 {
                    findings.push(err(
                        "model/negative-entry",
                        artifact,
                        *line_no,
                        format!("table {name} row {row_idx} col {col}: negative probability {v}"),
                    ));
                    row_ok = false;
                }
                sum += *v;
            }
            if row_ok && !row.is_empty() && (sum - 1.0).abs() > EPS {
                findings.push(err(
                    "model/cpt-row-sum",
                    artifact,
                    *line_no,
                    format!(
                        "table {name} row {row_idx}: sums to {sum:.12}, expected 1 within {EPS:e}"
                    ),
                ));
            }
        }
    }

    // Reachability: pose j must have positive mass somewhere.
    let col_positive = |name: &str, j: usize| -> bool {
        tables
            .iter()
            .find(|(n, _)| n == name)
            .is_some_and(|(_, t)| {
                t.rows
                    .iter()
                    .any(|(_, r)| r.get(j).copied().unwrap_or(0.0) > 0.0)
            })
    };
    let have_pose_tables = [
        "pose_marginal",
        "pose_transition",
        "pose_transition_nostage",
    ]
    .iter()
    .all(|n| tables.iter().any(|(name, _)| name == n));
    if have_pose_tables {
        for j in 0..poses {
            let reachable = col_positive("pose_marginal", j)
                || col_positive("pose_transition", j)
                || col_positive("pose_transition_nostage", j);
            if !reachable {
                findings.push(err(
                    "model/unreachable-pose",
                    artifact,
                    1,
                    format!(
                        "pose {j} has zero probability in the marginal and every transition row; \
                         it can never be recognised"
                    ),
                ));
            }
        }
    }
    // The Unknown fallback is reached only when the best pose likelihood
    // falls below Th_Pose; Th_Pose = 0 accepts every frame.
    if th_pose.is_finite() && th_pose <= 0.0 {
        findings.push(err(
            "model/unreachable-pose",
            artifact,
            2,
            "Th_Pose = 0: the Unknown fallback is unreachable, every frame is force-classified"
                .into(),
        ));
    }

    findings
}

/// Validates one `config k=v ...` line; extracts `partitions`/`th_pose`.
fn audit_config_tokens(
    artifact: &str,
    line_no: u32,
    cfg: &str,
    partitions: &mut usize,
    th_pose: &mut f64,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |rule: &str, msg: String| {
        findings.push(err(rule, artifact, line_no, msg));
    };
    for token in cfg.split_whitespace().skip(1) {
        let Some((k, v)) = token.split_once('=') else {
            push("model/format", format!("bad config token {token:?}"));
            continue;
        };
        let int = || v.parse::<i64>().ok();
        let num = || v.parse::<f64>().ok();
        let boolean = || matches!(v, "true" | "false");
        match k {
            "window" => match int() {
                Some(w) if w >= 1 => {}
                _ => push(
                    "model/config-range",
                    format!("window={v}: expected an integer >= 1"),
                ),
            },
            "th_object" => match int() {
                Some(t) if (0..=255).contains(&t) => {}
                _ => push(
                    "model/threshold-range",
                    format!("th_object={v}: expected an integer in 0..=255"),
                ),
            },
            "th_pose" => match num() {
                Some(t) if (0.0..=1.0).contains(&t) => *th_pose = t,
                _ => push(
                    "model/threshold-range",
                    format!("th_pose={v}: expected a probability in [0, 1]"),
                ),
            },
            "partitions" => match int() {
                Some(p) if (1..=64).contains(&p) => *partitions = p as usize,
                _ => push(
                    "model/config-range",
                    format!("partitions={v}: expected an integer in 1..=64"),
                ),
            },
            "alpha" => match num() {
                Some(a) if a.is_finite() && a >= 0.0 => {}
                _ => push(
                    "model/config-range",
                    format!("alpha={v}: expected a finite value >= 0"),
                ),
            },
            "activation" | "leak" => match num() {
                Some(x) if (0.0..=1.0).contains(&x) => {}
                _ => push(
                    "model/config-range",
                    format!("{k}={v}: expected a probability in [0, 1]"),
                ),
            },
            "median" => match int() {
                Some(m) if m >= 1 && m % 2 == 1 => {}
                _ => push(
                    "model/config-range",
                    format!("median={v}: expected an odd integer >= 1"),
                ),
            },
            "min_branch" => match int() {
                Some(m) if m >= 0 => {}
                _ => push(
                    "model/config-range",
                    format!("min_branch={v}: expected an integer >= 0"),
                ),
            },
            "auto_threshold" | "cut_loops" | "prune" | "hard_commit" | "carry_forward" => {
                if !boolean() {
                    push(
                        "model/config-range",
                        format!("{k}={v}: expected true/false"),
                    );
                }
            }
            "algorithm" => {
                if !matches!(v, "zhang-suen" | "guo-hall") {
                    push(
                        "model/config-range",
                        format!("algorithm={v}: expected zhang-suen or guo-hall"),
                    );
                }
            }
            "temporal" => {
                if !matches!(v, "static" | "prev-pose" | "full") {
                    push(
                        "model/config-range",
                        format!("temporal={v}: expected static, prev-pose or full"),
                    );
                }
            }
            "observation" => {
                if !matches!(v, "parts" | "areas") {
                    push(
                        "model/config-range",
                        format!("observation={v}: expected parts or areas"),
                    );
                }
            }
            other => push("model/format", format!("unknown config key {other:?}")),
        }
    }
    findings
}

/// Audits a standalone taxonomy artifact given as text: structural
/// parse/validation problems become findings under the
/// `taxonomy/format`, `taxonomy/partition`, `taxonomy/row-sum` and
/// `taxonomy/unknown-pose` rules.
pub fn audit_taxonomy_text(artifact: &str, text: &str) -> Vec<Finding> {
    match slj_taxonomy::Taxonomy::from_artifact_str(text) {
        Ok(_) => Vec::new(),
        Err(e) => vec![err(e.code, artifact, 0, e.message)],
    }
}

/// Audits a model (or config) file on disk.
pub fn audit_model_file(path: &Path, config_only: bool) -> Result<Vec<Finding>, CheckError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckError::Io(format!("read {}: {e}", path.display())))?;
    let artifact = path.to_string_lossy().replace('\\', "/");
    Ok(audit_model_text(&artifact, &text, config_only))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    /// Builds a well-formed synthetic model with uniform rows.
    fn good_model(partitions: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(
            out,
            "config window=3 th_object=67 auto_threshold=false median=3 min_branch=6 \
             cut_loops=true prune=true algorithm=zhang-suen partitions={partitions} th_pose=0.02 \
             alpha=1 activation=0.85 leak=0.02 temporal=full observation=areas \
             hard_commit=false carry_forward=true"
        );
        let mut table = |name: &str, rows: usize, cols: usize| {
            let _ = writeln!(out, "table {name} rows={rows} cols={cols}");
            let v = 1.0 / cols as f64;
            for _ in 0..rows {
                let row: Vec<String> = (0..cols).map(|_| format!("{v:e}")).collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
        };
        table("stage_transition", STAGES, STAGES);
        table("pose_transition", POSES * STAGES, POSES);
        table("pose_transition_nostage", POSES, POSES);
        table("pose_marginal", 1, POSES);
        table("part_given_pose", PARTS * POSES, partitions + 1);
        out
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    fn toy_taxonomy() -> slj_taxonomy::Taxonomy {
        use slj_taxonomy::{FaultRule, Polarity, PoseInfo, StageInfo, Taxonomy};
        Taxonomy::new(
            "toy-squat",
            5,
            vec![
                StageInfo {
                    ident: "Standing".into(),
                    display: "standing".into(),
                },
                StageInfo {
                    ident: "Squatting".into(),
                    display: "squatting".into(),
                },
            ],
            vec![
                PoseInfo {
                    ident: "Upright".into(),
                    display: "upright".into(),
                    stage: 0,
                },
                PoseInfo {
                    ident: "HalfSquat".into(),
                    display: "half squat".into(),
                    stage: 1,
                },
                PoseInfo {
                    ident: "DeepSquat".into(),
                    display: "deep squat".into(),
                    stage: 1,
                },
            ],
            0,
            None,
            vec![vec![0.5, 0.5], vec![0.0, 1.0]],
            vec![FaultRule {
                ident: "NoDepth".into(),
                display: "squat never reaches depth".into(),
                stage: 1,
                polarity: Polarity::Require,
                poses: vec![2],
                min_frames: 2,
                advice: "sink the hips lower".into(),
            }],
        )
        .expect("toy taxonomy is valid")
    }

    /// A well-formed model whose shapes come from `taxonomy`, with the
    /// artifact embedded the way `model_io` writes it.
    fn model_with_taxonomy(taxonomy: &slj_taxonomy::Taxonomy, partitions: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(
            out,
            "config window=3 th_object=67 auto_threshold=false median=3 min_branch=6 \
             cut_loops=true prune=true algorithm=zhang-suen partitions={partitions} th_pose=0.02 \
             alpha=1 activation=0.85 leak=0.02 temporal=full observation=areas \
             hard_commit=false carry_forward=true"
        );
        let artifact = taxonomy.to_artifact_string();
        let block: Vec<&str> = artifact.lines().collect();
        let _ = writeln!(out, "taxonomy lines={}", block.len());
        for line in &block {
            let _ = writeln!(out, "{line}");
        }
        let (p, st, parts) = (
            taxonomy.pose_count(),
            taxonomy.stage_count(),
            taxonomy.parts(),
        );
        let mut table = |name: &str, rows: usize, cols: usize| {
            let _ = writeln!(out, "table {name} rows={rows} cols={cols}");
            let v = 1.0 / cols as f64;
            for _ in 0..rows {
                let row: Vec<String> = (0..cols).map(|_| format!("{v:e}")).collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
        };
        table("stage_transition", st, st);
        table("pose_transition", p * st, p);
        table("pose_transition_nostage", p, p);
        table("pose_marginal", 1, p);
        table("part_given_pose", parts * p, partitions + 1);
        out
    }

    #[test]
    fn clean_model_passes() {
        let f = audit_model_text("m.model", &good_model(8), false);
        assert!(f.is_empty(), "unexpected findings: {:?}", rules(&f));
    }

    #[test]
    fn non_stochastic_row_rejected() {
        let text = good_model(8).replacen("2.5e-1", "3.5e-1", 1);
        let f = audit_model_text("m.model", &text, false);
        assert!(rules(&f).contains(&"model/cpt-row-sum"));
    }

    #[test]
    fn negative_entry_rejected() {
        let text = good_model(8).replacen("2.5e-1", "-2.5e-1", 1);
        let f = audit_model_text("m.model", &text, false);
        assert!(rules(&f).contains(&"model/negative-entry"));
    }

    #[test]
    fn area_code_out_of_range_rejected() {
        // Model claims partitions=8 but part_given_pose has 12 columns:
        // area codes 9..=11 are outside the configured partition count.
        let mut text = good_model(8);
        let wide_cols = 12usize;
        let from = format!("table part_given_pose rows={} cols=9", PARTS * POSES);
        let to = format!(
            "table part_given_pose rows={} cols={wide_cols}",
            PARTS * POSES
        );
        text = text.replace(&from, &to);
        let f = audit_model_text("m.model", &text, false);
        assert!(rules(&f).contains(&"model/area-code-range"));
    }

    #[test]
    fn threshold_ranges_checked() {
        let text = good_model(8)
            .replace("th_object=67", "th_object=300")
            .replace("th_pose=0.02", "th_pose=1.5");
        let f = audit_model_text("m.model", &text, false);
        let r = rules(&f);
        assert_eq!(
            r.iter().filter(|s| **s == "model/threshold-range").count(),
            2
        );
    }

    #[test]
    fn unreachable_pose_detected() {
        // Zero out pose 0 everywhere: marginal and all transition columns.
        let mut text = String::new();
        let _ = writeln!(text, "{MAGIC}");
        let _ = writeln!(
            text,
            "config window=3 th_object=67 auto_threshold=false median=3 min_branch=6 \
             cut_loops=true prune=true algorithm=zhang-suen partitions=8 th_pose=0.02 \
             alpha=1 activation=0.85 leak=0.02 temporal=full observation=areas \
             hard_commit=false carry_forward=true"
        );
        let table = |out: &mut String, name: &str, rows: usize, cols: usize, zero_col0: bool| {
            let _ = writeln!(out, "table {name} rows={rows} cols={cols}");
            for _ in 0..rows {
                let row: Vec<String> = (0..cols)
                    .map(|c| {
                        if zero_col0 {
                            if c == 0 {
                                "0".to_string()
                            } else {
                                format!("{:e}", 1.0 / (cols - 1) as f64)
                            }
                        } else {
                            format!("{:e}", 1.0 / cols as f64)
                        }
                    })
                    .collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
        };
        table(&mut text, "stage_transition", STAGES, STAGES, false);
        table(&mut text, "pose_transition", POSES * STAGES, POSES, true);
        table(&mut text, "pose_transition_nostage", POSES, POSES, true);
        table(&mut text, "pose_marginal", 1, POSES, true);
        table(&mut text, "part_given_pose", PARTS * POSES, 9, false);
        let f = audit_model_text("m.model", &text, false);
        assert!(f
            .iter()
            .any(|f| f.rule == "model/unreachable-pose" && f.message.contains("pose 0")));
    }

    #[test]
    fn th_pose_zero_kills_unknown_fallback() {
        let text = good_model(8).replace("th_pose=0.02", "th_pose=0");
        let f = audit_model_text("m.model", &text, false);
        assert!(f
            .iter()
            .any(|f| f.rule == "model/unreachable-pose" && f.message.contains("Unknown")));
    }

    #[test]
    fn missing_magic_is_fatal_format_error() {
        let f = audit_model_text("m.model", "not a model\n", false);
        assert_eq!(rules(&f), vec!["model/format"]);
    }

    #[test]
    fn config_only_mode_checks_just_the_config() {
        let cfg = "config window=0 th_object=67 th_pose=0.5 partitions=8";
        let f = audit_model_text("c.cfg", cfg, true);
        assert_eq!(rules(&f), vec!["model/config-range"]); // window=0
    }

    #[test]
    fn embedded_taxonomy_drives_the_shape_checks() {
        // 3 poses / 2 stages, nothing like the paper's 22/4: with the
        // block present the audit must accept taxonomy-sized tables...
        let taxonomy = toy_taxonomy();
        let f = audit_model_text("toy.model", &model_with_taxonomy(&taxonomy, 8), false);
        assert!(f.is_empty(), "unexpected findings: {:?}", rules(&f));
        // ...and still catch a non-stochastic row inside them. The
        // corrupted cell is a pose_transition entry (1/3), which only
        // occurs in the model tables, not in the embedded block.
        let text = model_with_taxonomy(&taxonomy, 8).replacen("3.33", "4.33", 1);
        let f = audit_model_text("toy.model", &text, false);
        assert!(rules(&f).contains(&"model/cpt-row-sum"));
    }

    #[test]
    fn corrupted_embedded_taxonomy_is_reported() {
        let taxonomy = toy_taxonomy();
        let good = model_with_taxonomy(&taxonomy, 8);
        // Point a pose at a stage ident that is not declared.
        let text = good.replacen("|Squatting", "|Nowhere", 1);
        let f = audit_model_text("toy.model", &text, false);
        assert!(
            f.iter().any(|f| f.rule.starts_with("taxonomy/")),
            "expected a taxonomy/* finding, got {:?}",
            rules(&f)
        );
    }

    #[test]
    fn standalone_taxonomy_artifact_dispatches_on_magic() {
        let taxonomy = toy_taxonomy();
        let artifact = taxonomy.to_artifact_string();
        assert!(audit_model_text("toy.taxonomy", &artifact, false).is_empty());

        // A stage-prior row that does not sum to 1 is a row-sum finding.
        let broken = artifact.replacen("5e-1", "7e-1", 1);
        let f = audit_model_text("toy.taxonomy", &broken, false);
        assert_eq!(rules(&f), vec!["taxonomy/row-sum"]);
    }
}
