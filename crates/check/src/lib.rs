//! `slj-check` — project-invariant static analysis for the standing-
//! long-jump workspace.
//!
//! Earlier PRs established contracts that ordinary tests only sample:
//! parallel execution is bit-identical to serial, steady-state streaming
//! allocates nothing, tracing never changes results. This crate checks
//! the *source* and the *artifacts* against those contracts mechanically,
//! with zero external dependencies (no `syn`, no serde — the scanner in
//! [`lexer`] and the JSON reader in [`baseline`] are hand-rolled, and all
//! JSON output goes through `slj_obs::JsonWriter`).
//!
//! Four analyzers:
//!
//! - [`lint::lint_workspace`] / [`lint::lint_source`] — the source
//!   linter: five named direct rules (`determinism/no-hash-iteration`,
//!   `determinism/no-wall-clock`, `perf/no-hot-path-alloc`,
//!   `robustness/no-panic-in-lib`, `obs/no-print`) with a
//!   reason-mandatory `// slj-check: allow(<rule>) — <reason>` escape
//!   hatch;
//! - [`reach::analyze_workspace`] — the interprocedural analyzer: an
//!   item-level parser ([`parse`]), a workspace symbol table
//!   ([`symbols`]) and an over-approximate call graph ([`callgraph`])
//!   feed reachability rules (`robustness/panic-reachable-from-api`,
//!   `perf/transitive-hot-path-alloc`,
//!   `determinism/wall-clock-reachable`,
//!   `determinism/hash-iteration-reachable`) and the
//!   `concurrency/lock-order` cycle detector; findings carry witness
//!   call chains;
//! - [`schemas::check_schemas`] — the schema-drift check: hard-coded
//!   `"schema": N` constants cross-verified against committed fixtures;
//! - [`audit::audit_model_file`] — the model-artifact auditor: CPT rows
//!   row-stochastic within `1e-9`, no negative entries, area codes
//!   within `partitions`, thresholds in range, all 22 poses plus the
//!   Unknown fallback reachable.
//!
//! Grandfathering is handled by [`baseline::Baseline`]: committed
//! per-rule per-file counts that may only decrease (the ratchet). The
//! CLI front end is `slj check`.
//!
//! # Examples
//!
//! ```
//! use slj_check::lint::lint_source;
//!
//! let findings = lint_source(
//!     "crates/bayes/src/dbn.rs",
//!     "fn tick() { let t = Instant::now(); }",
//! );
//! assert_eq!(findings[0].rule, "determinism/no-wall-clock");
//! ```

pub mod audit;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lint;
pub mod parse;
pub mod reach;
pub mod report;
pub mod schemas;
pub mod symbols;

/// Errors from workspace walking, artifact reading, or baseline parsing.
///
/// Analyzer *findings* are data ([`report::Finding`]), not errors; this
/// type covers only the cases where the checker itself cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Filesystem error (path in the message).
    Io(String),
    /// Malformed input the checker cannot recover from.
    Parse(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io(msg) => write!(f, "io error: {msg}"),
            CheckError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}
