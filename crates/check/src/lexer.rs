//! A hand-rolled Rust token scanner.
//!
//! `slj-check` deliberately avoids `syn` (the workspace has no external
//! dependencies), so the linter works on a flat token stream rather than
//! a syntax tree. The scanner understands exactly as much Rust as the
//! rules need to avoid false positives from non-code text:
//!
//! - line comments (kept — they carry `slj-check: allow(...)` directives)
//!   and nested block comments (skipped);
//! - string literals, raw strings (`r#"..."#`), byte strings, and char
//!   literals vs lifetimes — all skipped as opaque atoms, so a banned
//!   token inside a string or a doc example never fires a rule;
//! - identifiers, numbers, and single-character punctuation.
//!
//! Every token carries its 1-based source line for findings.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (text in [`Tok::text`]).
    Ident,
    /// A single punctuation character (text is that character).
    Punct,
    /// A line comment, `//` included (text is the whole comment).
    Comment,
    /// A string/char/byte-string literal (text dropped).
    Literal,
    /// A numeric literal (text is the literal as written, e.g. `1_000u64`
    /// — kept so the schema-drift check can read constant values).
    Number,
    /// A lifetime such as `'a` (text dropped).
    Lifetime,
}

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Token text for idents, puncts, comments and numbers; empty
    /// otherwise.
    pub text: String,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// Scans `source` into a token stream.
///
/// The scanner never fails: unrecognised bytes become [`TokKind::Punct`]
/// tokens, and an unterminated literal simply consumes the rest of the
/// file (the linter is a reporting tool, not a compiler).
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    toks.push(Tok {
                        line,
                        kind: TokKind::Comment,
                        text: chars[start..i].iter().collect(),
                    });
                    continue;
                }
                '*' => {
                    i += 2;
                    let mut depth = 1usize;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '\n' {
                            line += 1;
                        } else if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                            depth += 1;
                            i += 1;
                        } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                            depth -= 1;
                            i += 1;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }
        // Plain string literal.
        if c == '"' {
            let tok_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                line: tok_line,
                kind: TokKind::Literal,
                text: String::new(),
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(n) if is_ident_cont(n) => after == Some('\''),
                Some(_) => true, // e.g. '(' — punctuation char literal
                None => false,
            };
            if is_char_lit {
                let tok_line = line;
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Literal,
                    text: String::new(),
                });
            } else {
                // Lifetime: consume the ident part.
                i += 1;
                while i < chars.len() && is_ident_cont(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Lifetime,
                    text: String::new(),
                });
            }
            continue;
        }
        // Identifier (and raw/byte string prefixes).
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_cont(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // Raw identifier? (`r#fn` is the identifier `fn`, not the
            // keyword). Kept as one Ident with the `r#` prefix so keyword
            // checks like `is_ident("fn")` never match it.
            if text == "r"
                && chars.get(i) == Some(&'#')
                && chars.get(i + 1).copied().is_some_and(is_ident_start)
            {
                let mut j = i + 1;
                while j < chars.len() && is_ident_cont(chars[j]) {
                    j += 1;
                }
                let raw: String = chars[start..j].iter().collect();
                toks.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: raw,
                });
                i = j;
                continue;
            }
            // Raw / byte string? (r"...", r#"..."#, b"...", br#"..."#)
            if matches!(text.as_str(), "r" | "b" | "br" | "rb") {
                let mut j = i;
                let mut hashes = 0usize;
                while j < chars.len() && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                // Only treat as a string when a quote actually follows.
                if j < chars.len() && chars[j] == '"' {
                    let tok_line = line;
                    i = j + 1;
                    // Find closing quote followed by `hashes` hash marks.
                    'scan: while i < chars.len() {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        // Plain b"..." honours escapes; raw forms do not.
                        if hashes == 0 && !text.starts_with('r') && chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Literal,
                        text: String::new(),
                    });
                    continue;
                }
            }
            toks.push(Tok {
                line,
                kind: TokKind::Ident,
                text,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let n = chars[i];
                if is_ident_cont(n) {
                    i += 1;
                } else if n == '.'
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    && chars
                        .get(i.wrapping_sub(1))
                        .is_some_and(|d| d.is_ascii_digit())
                {
                    // `1.5` continues the number; `0..10` does not.
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                line,
                kind: TokKind::Number,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Everything else: one punctuation character.
        toks.push(Tok {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(toks: &[Tok]) -> Vec<&str> {
        toks.iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let toks = lex("let x = 1;\nfoo.bar();\n");
        assert_eq!(idents(&toks), vec!["let", "x", "foo", "bar"]);
        let foo = toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 2);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = "let s = \"panic! unwrap()\"; // trailing panic!\n/* unwrap() */ call();";
        let toks = lex(src);
        assert!(!idents(&toks).contains(&"panic"));
        assert!(!idents(&toks).contains(&"unwrap"));
        assert!(idents(&toks).contains(&"call"));
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("trailing"));
    }

    #[test]
    fn raw_strings_skipped() {
        let src = "let s = r#\"has \"unwrap()\" inside\"#; next()";
        let toks = lex(src);
        assert!(!idents(&toks).contains(&"unwrap"));
        assert!(idents(&toks).contains(&"next"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ real()");
        assert_eq!(idents(&toks), vec!["real"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 { x(1.5); }");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps both dots");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Number).count(), 3);
    }

    #[test]
    fn raw_identifiers_do_not_match_keywords() {
        // `r#fn` is the identifier `fn`, not the keyword: it must come
        // out as ONE ident whose text never equals "fn".
        let toks = lex("let r#fn = 3; call(r#type);");
        assert!(toks.iter().all(|t| !t.is_ident("fn")));
        assert!(toks.iter().any(|t| t.is_ident("r#fn")));
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
        // ... while `r#"..."#` stays a raw string, not a raw identifier.
        let toks = lex("let s = r#\"text\"#;");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn numbers_keep_their_text() {
        let toks = lex("const V: u64 = 5; let x = 1_000u32; let h = 0x1F;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["5", "1_000u32", "0x1F"]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"a\nb\";\nafter()");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }
}
