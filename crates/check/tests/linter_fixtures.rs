//! Fixture tests for the source linter: one seeded violation per rule,
//! the allow escape hatch (with and without its mandatory reason), the
//! ratchet, and the JSON rendering CI consumes.

use slj_check::baseline::Baseline;
use slj_check::lint::{
    lint_source, RULE_ALLOW_REASON, RULE_HASH_ITER, RULE_HOT_ALLOC, RULE_LIB_PANIC, RULE_NO_PRINT,
    RULE_WALL_CLOCK,
};
use slj_check::report::{render_json, Finding};

/// Each fixture seeds exactly one violation of one rule at a known line
/// in a file where the rule is in scope.
fn fixtures() -> Vec<(&'static str, &'static str, &'static str, u32)> {
    vec![
        (
            RULE_HASH_ITER,
            "crates/runtime/src/pool.rs",
            "fn fan_out() {\n    let seen: HashMap<usize, u64> = HashMap::new();\n    for (k, v) in seen.iter() {\n        touch(k, v);\n    }\n}\n",
            3,
        ),
        (
            RULE_WALL_CLOCK,
            "crates/bayes/src/dbn.rs",
            "fn step() {\n    let t0 = Instant::now();\n    infer(t0);\n}\n",
            2,
        ),
        (
            RULE_HOT_ALLOC,
            "crates/imaging/src/filter.rs",
            "fn median_filter_par(src: &[u8]) {\n    let scratch = Vec::new();\n    fill(scratch, src);\n}\n",
            2,
        ),
        (
            RULE_LIB_PANIC,
            "crates/core/src/model_io.rs",
            "fn parse(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
            2,
        ),
        (
            RULE_NO_PRINT,
            "crates/skeleton/src/graph.rs",
            "fn report(n: usize) {\n    println!(\"{n} branches\");\n}\n",
            2,
        ),
    ]
}

#[test]
fn each_rule_fires_on_its_seeded_fixture() {
    for (rule, path, src, line) in fixtures() {
        let findings = lint_source(path, src);
        let active: Vec<&Finding> = findings.iter().filter(|f| f.is_active()).collect();
        assert_eq!(
            active.len(),
            1,
            "{rule}: expected exactly one active finding in {path}, got {findings:?}"
        );
        assert_eq!(active[0].rule, rule, "wrong rule for fixture in {path}");
        assert_eq!(active[0].file, path);
        assert_eq!(active[0].line, line, "{rule}: wrong line");
    }
}

#[test]
fn json_output_names_rule_and_file_line() {
    let (rule, path, src, line) = fixtures().remove(0);
    let findings = lint_source(path, src);
    let json = render_json(&findings, None, false);
    assert!(json.contains("\"schema\":1"));
    assert!(json.contains(&format!("\"rule\":\"{rule}\"")));
    assert!(json.contains(&format!("\"file\":\"{path}\"")));
    assert!(json.contains(&format!("\"line\":{line}")));
}

#[test]
fn allow_with_reason_suppresses_only_that_finding() {
    let src = "// slj-check: allow(perf/no-hot-path-alloc) — warm-up path, runs once per session\n\
               fn warm_par() {\n    let v = Vec::new();\n    seed(v);\n}\n";
    // The directive sits on the line before the `fn`, not the violation:
    // it must NOT suppress a finding two lines away.
    let findings = lint_source("crates/imaging/src/filter.rs", src);
    assert!(findings.iter().any(|f| f.is_active()));

    let src = "fn warm_par() {\n    // slj-check: allow(perf/no-hot-path-alloc) — warm-up path, runs once\n    let v = Vec::new();\n    seed(v);\n}\n";
    let findings = lint_source("crates/imaging/src/filter.rs", src);
    let hit = findings.iter().find(|f| f.rule == RULE_HOT_ALLOC);
    assert!(
        hit.is_some_and(|f| f.allowed.as_deref() == Some("warm-up path, runs once")),
        "directive on the preceding line must suppress with its reason: {findings:?}"
    );
    assert!(findings.iter().all(|f| !f.is_active()));
}

#[test]
fn allow_without_reason_is_itself_a_finding() {
    let src = "fn warm_par() {\n    let v = Vec::new(); // slj-check: allow(perf/no-hot-path-alloc)\n    seed(v);\n}\n";
    let findings = lint_source("crates/imaging/src/filter.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RULE_ALLOW_REASON && f.is_active()),
        "bare allow must emit check/allow-missing-reason"
    );
    let hot = findings.iter().find(|f| f.rule == RULE_HOT_ALLOC);
    assert!(
        hot.is_some_and(|f| f.is_active()),
        "bare allow must not suppress the underlying finding"
    );
}

#[test]
fn ratchet_regression_detected() {
    let baseline = Baseline::parse(
        r#"{"schema":1,"rules":{"robustness/no-panic-in-lib":{"crates/core/src/model_io.rs":1}}}"#,
    )
    .expect("baseline parses");
    // Two unwraps now where the baseline allows one.
    let src =
        "fn a(v: Option<u8>) -> u8 { v.unwrap() }\nfn b(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let findings = lint_source("crates/core/src/model_io.rs", src);
    let current = Baseline::from_findings(&findings);
    let report = baseline.compare(&current);
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].baseline, 1);
    assert_eq!(report.regressions[0].current, 2);

    // And the ratchet tightening direction: one unwrap is fine.
    let src = "fn a(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let current = Baseline::from_findings(&lint_source("crates/core/src/model_io.rs", src));
    let report = baseline.compare(&current);
    assert!(report.regressions.is_empty());
}

#[test]
fn improvements_reported_for_baseline_refresh() {
    let baseline = Baseline::parse(
        r#"{"schema":1,"rules":{"robustness/no-panic-in-lib":{"crates/core/src/model_io.rs":3}}}"#,
    )
    .expect("baseline parses");
    let src = "fn a(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let current = Baseline::from_findings(&lint_source("crates/core/src/model_io.rs", src));
    let report = baseline.compare(&current);
    assert!(report.regressions.is_empty());
    assert_eq!(report.improvements.len(), 1);
    assert_eq!(report.improvements[0].current, 1);
}
