//! Fixture tests for the model-artifact auditor: a hand-corrupted model
//! exercising each check the paper's learned tables must satisfy.

use std::fmt::Write as _;

use slj_check::audit::{audit_model_text, PARTS, POSES, STAGES};

/// Renders a structurally valid model with uniform CPT rows.
fn valid_model(partitions: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "slj-pose-model v1");
    let _ = writeln!(
        out,
        "config window=3 th_object=67 auto_threshold=false median=3 min_branch=6 \
         cut_loops=true prune=true algorithm=zhang-suen partitions={partitions} th_pose=0.02 \
         alpha=1 activation=0.85 leak=0.02 temporal=full observation=areas \
         hard_commit=false carry_forward=true"
    );
    let table = |out: &mut String, name: &str, rows: usize, cols: usize| {
        let _ = writeln!(out, "table {name} rows={rows} cols={cols}");
        let v = 1.0 / cols as f64;
        for _ in 0..rows {
            let row: Vec<String> = (0..cols).map(|_| format!("{v:e}")).collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
    };
    table(&mut out, "stage_transition", STAGES, STAGES);
    table(&mut out, "pose_transition", POSES * STAGES, POSES);
    table(&mut out, "pose_transition_nostage", POSES, POSES);
    table(&mut out, "pose_marginal", 1, POSES);
    table(&mut out, "part_given_pose", PARTS * POSES, partitions + 1);
    out
}

fn rule_set(text: &str) -> Vec<String> {
    audit_model_text("fixture.model", text, false)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn valid_model_audits_clean() {
    assert!(rule_set(&valid_model(8)).is_empty());
}

#[test]
fn non_stochastic_cpt_row_fires() {
    // stage_transition rows are four entries of 2.5e-1; bump one.
    let text = valid_model(8).replacen("2.5e-1", "6e-1", 1);
    let rules = rule_set(&text);
    assert!(
        rules.contains(&"model/cpt-row-sum".to_string()),
        "{rules:?}"
    );
}

#[test]
fn negative_probability_fires() {
    let text = valid_model(8).replacen("2.5e-1", "-2.5e-1", 1);
    let rules = rule_set(&text);
    assert!(rules.contains(&"model/negative-entry".to_string()));
}

#[test]
fn out_of_range_area_code_fires() {
    // partitions=8 allows area codes 0..=8 (9 columns); a table claiming
    // 13 columns encodes area codes beyond the configured partitions.
    let text = valid_model(8).replace(
        &format!("table part_given_pose rows={} cols=9", PARTS * POSES),
        &format!("table part_given_pose rows={} cols=13", PARTS * POSES),
    );
    let rules = rule_set(&text);
    assert!(
        rules.contains(&"model/area-code-range".to_string()),
        "{rules:?}"
    );
}

#[test]
fn threshold_out_of_range_fires() {
    let text = valid_model(8).replace("th_object=67", "th_object=999");
    assert!(rule_set(&text).contains(&"model/threshold-range".to_string()));
    let text = valid_model(8).replace("th_pose=0.02", "th_pose=-0.5");
    assert!(rule_set(&text).contains(&"model/threshold-range".to_string()));
}

#[test]
fn truncated_table_fires_shape() {
    // Drop the last line (a part_given_pose row).
    let full = valid_model(8);
    let cut = full
        .trim_end()
        .rsplit_once('\n')
        .map(|(head, _)| head)
        .unwrap_or("");
    let rules = rule_set(&format!("{cut}\n"));
    assert!(rules.contains(&"model/shape".to_string()), "{rules:?}");
}

#[test]
fn corrupt_table_does_not_mask_later_checks() {
    // Break stage_transition's header AND zero th_pose: both findings
    // must surface in one pass (the auditor resynchronises).
    let text = valid_model(8)
        .replace(
            "table stage_transition rows=4 cols=4",
            "table stage_transition rows=oops",
        )
        .replace("th_pose=0.02", "th_pose=0");
    let rules = rule_set(&text);
    assert!(rules.contains(&"model/format".to_string()));
    assert!(rules.contains(&"model/unreachable-pose".to_string()));
}

#[test]
fn findings_carry_artifact_path_and_line() {
    let text = valid_model(8).replacen("2.5e-1", "6e-1", 1);
    let findings = audit_model_text("models/bad.model", &text, false);
    let f = findings
        .iter()
        .find(|f| f.rule == "model/cpt-row-sum")
        .expect("row-sum finding");
    assert_eq!(f.file, "models/bad.model");
    assert!(
        f.line >= 3,
        "finding should point at the corrupted row line"
    );
}
