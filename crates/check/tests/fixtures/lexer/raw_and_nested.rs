//! Lexer fixture: raw strings and nested block comments that would
//! derail a naive scanner.

/* outer /* nested block comment */ still the same comment */
pub fn emit() -> (&'static str, &'static str) {
    let doc = r#"not code: // slj-check: allow(fake/rule) — from inside a raw string"#;
    let tricky = r##"contains "# and */ and 'a lifetimes"##;
    (doc, tricky)
}
// trailing line comment after the raw strings
