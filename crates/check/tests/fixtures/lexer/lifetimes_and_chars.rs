//! Lexer fixture: lifetimes vs char literals vs labeled loops, plus a
//! raw identifier sharing a keyword's spelling.

pub struct Holder<'a> {
    slice: &'a [u8],
}

impl<'a> Holder<'a> {
    pub fn r#match(&self) -> usize {
        let quote = '\'';
        let newline = '\n';
        let alpha = 'a';
        let mut n = 0usize;
        'outer: for &b in self.slice {
            if b == quote as u8 || b == newline as u8 || b == alpha as u8 {
                n += 1_000usize / 1_000;
                break 'outer;
            }
        }
        n
    }
}
