//! Regression tests for the hand-rolled lexer over committed fixture
//! files — real `.rs` sources on disk rather than inline strings, so
//! the cases stay readable and editors keep them valid Rust.

use slj_check::lexer::{lex, TokKind};

const RAW_AND_NESTED: &str = include_str!("fixtures/lexer/raw_and_nested.rs");
const LIFETIMES_AND_CHARS: &str = include_str!("fixtures/lexer/lifetimes_and_chars.rs");

/// 1-based line of the first fixture line containing `needle`.
fn line_of(source: &str, needle: &str) -> u32 {
    source
        .lines()
        .position(|l| l.contains(needle))
        .map(|i| i as u32 + 1)
        .expect("needle present in fixture")
}

#[test]
fn raw_strings_swallow_directives_and_comment_markers() {
    let toks = lex(RAW_AND_NESTED);
    // The fake allow directive lives inside a raw string: no token of
    // any kind may surface it to the directive parser.
    assert!(
        toks.iter().all(|t| !t.text.contains("fake/rule")),
        "directive text leaked out of a raw string"
    );
    // The `*/` and `"#` inside `r##"..."##` must not terminate
    // anything early: the identifiers around the literals still lex.
    for ident in ["emit", "doc", "tricky"] {
        assert!(
            toks.iter()
                .any(|t| t.kind == TokKind::Ident && t.text == ident),
            "identifier {ident} lost"
        );
    }
}

#[test]
fn nested_block_comments_do_not_eat_code() {
    let toks = lex(RAW_AND_NESTED);
    // The nested block comment is skipped whole: its words never become
    // identifiers, and the code after it survives.
    assert!(
        !toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "nested"),
        "block-comment text lexed as code"
    );
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "emit"));
}

#[test]
fn line_comments_keep_their_text_and_line() {
    let toks = lex(RAW_AND_NESTED);
    let trailing = toks
        .iter()
        .find(|t| t.kind == TokKind::Comment && t.text.contains("trailing line comment"))
        .expect("trailing comment survives as a Comment token");
    assert_eq!(
        trailing.line,
        line_of(RAW_AND_NESTED, "trailing line comment"),
        "comment line numbers must stay exact — allow directives bind by line"
    );
}

#[test]
fn lifetimes_and_char_literals_are_distinguished() {
    let toks = lex(LIFETIMES_AND_CHARS);
    let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
    let literals = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
    // `'a` ×4 (struct, impl, field, nothing spurious) and `'outer` ×2.
    assert!(
        lifetimes >= 5,
        "expected the 'a and 'outer lifetimes, got {lifetimes}"
    );
    // `'\''`, `'\n'`, `'a'` are char literals, not lifetimes.
    assert!(
        literals >= 3,
        "expected three char literals, got {literals}"
    );
}

#[test]
fn raw_identifiers_and_numeric_suffixes_lex_whole() {
    let toks = lex(LIFETIMES_AND_CHARS);
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("match")),
        "r#match must lex as a single identifier"
    );
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Number && t.text == "1_000usize"),
        "numeric literals keep their text for the schema-drift check"
    );
}
