//! Evaluation: per-clip accuracy (the Section 5 headline), confusion
//! matrices, and the consecutive-error burst analysis.

use crate::engine::JumpSession;
use crate::error::SljError;
use crate::model::{PoseEstimate, PoseModel};
use slj_runtime::{Parallelism, ThreadPool};
use slj_sim::dataset::LabeledClip;
use slj_taxonomy::Taxonomy;

/// Results on one clip.
#[derive(Debug, Clone)]
pub struct ClipReport {
    /// Clip identifier.
    pub clip_id: usize,
    /// Frames classified correctly.
    pub correct: usize,
    /// Total frames.
    pub total: usize,
    /// Frames rejected as Unknown.
    pub unknown: usize,
    /// Per-frame estimates.
    pub estimates: Vec<PoseEstimate>,
    /// Ground-truth pose indices (taxonomy-relative), aligned with
    /// `estimates`.
    pub truth: Vec<usize>,
}

impl ClipReport {
    /// Frame accuracy (Unknown counts as incorrect).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Lengths of maximal runs of consecutive misclassified frames.
    pub fn error_bursts(&self) -> Vec<usize> {
        let mut bursts = Vec::new();
        let mut run = 0usize;
        for (est, &truth) in self.estimates.iter().zip(&self.truth) {
            if est.pose == Some(truth) {
                if run > 0 {
                    bursts.push(run);
                    run = 0;
                }
            } else {
                run += 1;
            }
        }
        if run > 0 {
            bursts.push(run);
        }
        bursts
    }
}

/// Results over a clip set.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Per-clip reports.
    pub clips: Vec<ClipReport>,
    /// Confusion matrix: `confusion[truth][predicted]`, with the final
    /// extra column (index `pose_count`) for Unknown.
    pub confusion: Vec<Vec<u32>>,
    /// The taxonomy of the evaluated model — resolves every index in
    /// this report.
    pub taxonomy: Taxonomy,
}

impl EvalReport {
    /// Overall frame accuracy across all clips.
    pub fn overall_accuracy(&self) -> f64 {
        let correct: usize = self.clips.iter().map(|c| c.correct).sum();
        let total: usize = self.clips.iter().map(|c| c.total).sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-clip accuracies (the paper reports "81% to 87% for the three
    /// test video clips").
    pub fn per_clip_accuracy(&self) -> Vec<f64> {
        self.clips.iter().map(ClipReport::accuracy).collect()
    }

    /// All error-burst lengths pooled over clips.
    pub fn error_bursts(&self) -> Vec<usize> {
        self.clips.iter().flat_map(|c| c.error_bursts()).collect()
    }

    /// Fraction of erroneous frames that sit in a burst of at least
    /// `min_len` consecutive errors (the paper: "Most errors in our
    /// experiments occurred in consecutive frames").
    pub fn burst_error_fraction(&self, min_len: usize) -> f64 {
        let bursts = self.error_bursts();
        let total_errors: usize = bursts.iter().sum();
        if total_errors == 0 {
            return 0.0;
        }
        let in_bursts: usize = bursts.iter().filter(|&&b| b >= min_len).sum();
        in_bursts as f64 / total_errors as f64
    }

    /// Total Unknown frames.
    pub fn unknown_frames(&self) -> usize {
        self.clips.iter().map(|c| c.unknown).sum()
    }

    /// Frame accuracy per ground-truth jump stage, in stage order
    /// (one entry per taxonomy stage). Stages with no frames report
    /// `None`.
    pub fn per_stage_accuracy(&self) -> Vec<Option<f64>> {
        let s_count = self.taxonomy.stage_count();
        let mut correct = vec![0usize; s_count];
        let mut total = vec![0usize; s_count];
        for clip in &self.clips {
            for (est, &truth) in clip.estimates.iter().zip(&clip.truth) {
                let s = self.taxonomy.stage_of_pose(truth);
                total[s] += 1;
                if est.pose == Some(truth) {
                    correct[s] += 1;
                }
            }
        }
        (0..s_count)
            .map(|s| {
                if total[s] == 0 {
                    None
                } else {
                    Some(correct[s] as f64 / total[s] as f64)
                }
            })
            .collect()
    }

    /// Renders the non-trivial confusion-matrix entries as a text table:
    /// one line per `(truth, predicted)` pair with at least `min_count`
    /// occurrences, most frequent first. Diagonal (correct) entries are
    /// omitted — the table answers "what gets confused with what".
    pub fn format_confusions(&self, min_count: u32) -> String {
        let mut entries: Vec<(u32, usize, usize)> = Vec::new();
        for (t, row) in self.confusion.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                if t != p && c >= min_count.max(1) {
                    entries.push((c, t, p));
                }
            }
        }
        entries.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = String::new();
        out.push_str("count  truth -> predicted\n");
        for (c, t, p) in entries {
            let predicted = if p == self.taxonomy.pose_count() {
                "UNKNOWN"
            } else {
                self.taxonomy.pose_display(p)
            };
            out.push_str(&format!(
                "{c:5}  {} -> {}\n",
                self.taxonomy.pose_display(t),
                predicted
            ));
        }
        out
    }

    /// One-paragraph text summary of the evaluation.
    pub fn format_summary(&self) -> String {
        let per_clip = self
            .per_clip_accuracy()
            .iter()
            .map(|a| format!("{:.1}%", 100.0 * a))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{} clips, {} frames: overall accuracy {:.1}% (per clip: {per_clip}); \
             {} unknown frames; {:.0}% of errors in bursts of >=2 consecutive frames",
            self.clips.len(),
            self.clips.iter().map(|c| c.total).sum::<usize>(),
            100.0 * self.overall_accuracy(),
            self.unknown_frames(),
            100.0 * self.burst_error_fraction(2),
        )
    }
}

/// Classifies one clip with a trained model.
///
/// # Errors
///
/// Propagates pipeline and inference errors.
pub fn evaluate_clip(model: &PoseModel, clip: &LabeledClip) -> Result<ClipReport, SljError> {
    let mut session = JumpSession::new(model, clip.background.clone())?;
    let mut estimates = Vec::with_capacity(clip.len());
    let mut correct = 0usize;
    let mut unknown = 0usize;
    // Simulator ground truth is labelled with the canonical enums, whose
    // declaration indices ARE the default taxonomy's pose indices.
    for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
        let est = session.push_frame(frame)?;
        match est.pose {
            Some(p) if p == truth.pose.index() => correct += 1,
            None => unknown += 1,
            _ => {}
        }
        estimates.push(est);
    }
    Ok(ClipReport {
        clip_id: clip.id,
        correct,
        total: clip.len(),
        unknown,
        estimates,
        truth: clip.pose_sequence().iter().map(|p| p.index()).collect(),
    })
}

/// Classifies a set of clips and aggregates the statistics.
///
/// Clips fan out across a worker pool sized by [`Parallelism::Auto`]
/// (overridable via the `SLJ_THREADS` environment variable). The report
/// is **bit-identical** to a serial evaluation: each clip is classified
/// by exactly one worker with its own session state, per-clip reports
/// are collected in clip order, and the confusion matrix is accumulated
/// serially from the ordered reports.
///
/// # Errors
///
/// Propagates pipeline and inference errors, reported for the earliest
/// failing clip; [`SljError::Runtime`] on a worker panic.
pub fn evaluate(model: &PoseModel, clips: &[LabeledClip]) -> Result<EvalReport, SljError> {
    evaluate_with(model, clips, &ThreadPool::new(Parallelism::default()))
}

/// [`evaluate`] on an explicit worker pool (e.g. [`ThreadPool::serial`]
/// for single-threaded runs or a fixed size for benchmarking).
///
/// # Errors
///
/// Propagates pipeline and inference errors, reported for the earliest
/// failing clip; [`SljError::Runtime`] on a worker panic.
pub fn evaluate_with(
    model: &PoseModel,
    clips: &[LabeledClip],
    pool: &ThreadPool,
) -> Result<EvalReport, SljError> {
    let reports = pool
        .scoped_map(clips, |_, clip| evaluate_clip(model, clip))?
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let p_count = model.taxonomy().pose_count();
    let mut confusion = vec![vec![0u32; p_count + 1]; p_count];
    for report in &reports {
        for (est, &truth) in report.estimates.iter().zip(&report.truth) {
            let col = est.pose.unwrap_or(p_count);
            confusion[truth][col] += 1;
        }
    }
    Ok(EvalReport {
        clips: reports,
        confusion,
        taxonomy: model.taxonomy().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::training::Trainer;
    use slj_sim::pose::PoseClass;
    use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

    const P: usize = PoseClass::COUNT;

    fn tiny_world() -> (PoseModel, Vec<LabeledClip>) {
        let sim = JumpSimulator::new(55);
        let noise = NoiseConfig::default().scaled(0.5);
        let train: Vec<LabeledClip> = (0..3)
            .map(|i| {
                sim.generate_clip(&ClipSpec {
                    total_frames: 30,
                    seed: i,
                    noise,
                    rare_poses: i == 2,
                    ..ClipSpec::default()
                })
            })
            .collect();
        let test = vec![sim.generate_clip(&ClipSpec {
            total_frames: 30,
            seed: 99,
            noise,
            ..ClipSpec::default()
        })];
        let model = Trainer::new(PipelineConfig::default())
            .unwrap()
            .train(&train)
            .unwrap();
        (model, test)
    }

    #[test]
    fn evaluation_aggregates_consistently() {
        let (model, test) = tiny_world();
        let report = evaluate(&model, &test).unwrap();
        assert_eq!(report.clips.len(), 1);
        let clip = &report.clips[0];
        assert_eq!(clip.total, 30);
        assert_eq!(clip.estimates.len(), 30);
        assert!(clip.correct <= clip.total);
        // Confusion matrix total equals frame total.
        let conf_total: u32 = report.confusion.iter().flatten().sum();
        assert_eq!(conf_total as usize, 30);
        // Overall accuracy equals the one clip's accuracy.
        assert!((report.overall_accuracy() - clip.accuracy()).abs() < 1e-12);
        // Better than chance (1/22 ≈ 4.5%).
        assert!(
            report.overall_accuracy() > 0.2,
            "accuracy {}",
            report.overall_accuracy()
        );
    }

    #[test]
    fn evaluate_with_matches_serial() {
        let (model, test) = tiny_world();
        let expected = evaluate_with(&model, &test, &ThreadPool::serial()).unwrap();
        for threads in [2, 8] {
            let got = evaluate_with(&model, &test, &ThreadPool::fixed(threads)).unwrap();
            assert_eq!(got.confusion, expected.confusion, "threads {threads}");
            assert_eq!(got.clips.len(), expected.clips.len());
            for (a, b) in got.clips.iter().zip(&expected.clips) {
                assert_eq!(a.clip_id, b.clip_id);
                assert_eq!(a.correct, b.correct);
                assert_eq!(a.unknown, b.unknown);
                assert_eq!(a.estimates, b.estimates, "threads {threads}");
                assert_eq!(a.truth, b.truth);
            }
        }
    }

    #[test]
    fn error_bursts_partition_all_errors() {
        let (model, test) = tiny_world();
        let report = evaluate(&model, &test).unwrap();
        let clip = &report.clips[0];
        let errors = clip.total - clip.correct;
        let burst_sum: usize = clip.error_bursts().iter().sum();
        assert_eq!(burst_sum, errors);
        let frac = report.burst_error_fraction(1);
        if errors > 0 {
            assert!(
                (frac - 1.0).abs() < 1e-12,
                "every error is in a burst of >=1"
            );
        }
    }

    #[test]
    fn per_stage_accuracy_partitions_frames() {
        let (model, test) = tiny_world();
        let report = evaluate(&model, &test).unwrap();
        let per_stage = report.per_stage_accuracy();
        // Every stage occurs in a full jump clip.
        assert!(per_stage.iter().all(|a| a.is_some()));
        // Weighted average over stages equals the overall accuracy.
        let mut correct = 0.0;
        let mut total = 0.0;
        for (s, acc) in per_stage.iter().enumerate() {
            let frames: usize = report.clips[0]
                .truth
                .iter()
                .filter(|&&p| report.taxonomy.stage_of_pose(p) == s)
                .count();
            correct += acc.unwrap() * frames as f64;
            total += frames as f64;
        }
        assert!((correct / total - report.overall_accuracy()).abs() < 1e-9);
    }

    #[test]
    fn report_formatting() {
        let (model, test) = tiny_world();
        let report = evaluate(&model, &test).unwrap();
        let summary = report.format_summary();
        assert!(summary.contains("1 clips, 30 frames"));
        assert!(summary.contains("overall accuracy"));
        let confusions = report.format_confusions(1);
        assert!(confusions.starts_with("count  truth -> predicted"));
        // Every listed confusion is off-diagonal by construction: no
        // line may map a pose to itself.
        for line in confusions.lines().skip(1) {
            if let Some((lhs, rhs)) = line.split_once(" -> ") {
                let truth = lhs.split_whitespace().skip(1).collect::<Vec<_>>().join(" ");
                assert_ne!(truth, rhs.trim(), "diagonal entry listed: {line}");
            }
        }
    }

    #[test]
    fn burst_fraction_on_synthetic_report() {
        // Hand-build a report to pin the burst maths.
        let mk_est = |pose: Option<PoseClass>| PoseEstimate {
            pose: pose.map(|p| p.index()),
            posterior: vec![0.0; P],
            stage: slj_sim::stage::JumpStage::BeforeJumping.index(),
            stage_posterior: vec![0.25; 4],
            committed_pose: PoseClass::initial().index(),
        };
        let truth = vec![PoseClass::initial().index(); 6];
        // Pattern: wrong, wrong, right, wrong, right, right.
        let estimates = vec![
            mk_est(None),
            mk_est(Some(PoseClass::majority())),
            mk_est(Some(PoseClass::initial())),
            mk_est(None),
            mk_est(Some(PoseClass::initial())),
            mk_est(Some(PoseClass::initial())),
        ];
        let clip = ClipReport {
            clip_id: 0,
            correct: 3,
            total: 6,
            unknown: 2,
            estimates,
            truth,
        };
        assert_eq!(clip.error_bursts(), vec![2, 1]);
        let report = EvalReport {
            clips: vec![clip],
            confusion: vec![vec![0; P + 1]; P],
            taxonomy: slj_sim::default_taxonomy(),
        };
        // 2 of 3 errors sit in a burst >= 2.
        assert!((report.burst_error_fraction(2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.unknown_frames(), 2);
    }
}
