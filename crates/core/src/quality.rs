//! Glue between the engine and the `slj-quality` diagnostics crate:
//! adapts the artifacts a pass already produces ([`FrameSlots`],
//! [`Decision`]) into the plain [`FrameSignals`] the analyzer consumes,
//! and resolves the taxonomy's part layout.
//!
//! Lives here rather than in `slj-quality` so the diagnostics crate
//! stays free of pipeline types — it sees numbers, the engine decides
//! where the numbers come from.

use crate::engine::FrameSlots;
use crate::model::Decision;
use slj_quality::{DecisionSignals, FrameSignals, PartLayout, SilhouetteSignals, MAX_PARTS};
use slj_taxonomy::Taxonomy;

/// Resolves the part layout the analyzer's skeleton constraints run
/// over. The engine's key-point extractor fills
/// [`FrameSignals::parts`] in the paper's canonical order (head, chest,
/// hand, knee, foot), so a five-part taxonomy gets the vertical-order
/// anchors; any other part count keeps the generic constraints only.
pub fn part_layout(taxonomy: &Taxonomy) -> PartLayout {
    if taxonomy.parts() == 5 {
        PartLayout::canonical_five()
    } else {
        PartLayout::anonymous(taxonomy.parts())
    }
}

/// Builds one frame's quality signals from the engine's slots and the
/// classifier decision (when the DBN ran). Allocation-free.
pub fn frame_signals(slots: &FrameSlots, decision: Option<&Decision>) -> FrameSignals {
    let (width, height) = slots.silhouette.dimensions();
    let mut parts = [None; MAX_PARTS];
    let kp = &slots.keypoints;
    parts[0] = kp.head;
    parts[1] = kp.chest;
    parts[2] = kp.hand;
    parts[3] = kp.knee;
    parts[4] = kp.foot;
    FrameSignals {
        decision: decision.map(|d| DecisionSignals {
            best_prob: d.best_prob,
            th_margin: d.th_margin,
            accepted: d.accepted,
            carry_forward: d.carry_forward,
        }),
        silhouette: Some(SilhouetteSignals {
            foreground: slots.silhouette.count_ones() as u64,
            width: width as u32,
            height: height as u32,
        }),
        parts,
        ensemble: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::binary::BinaryImage;

    #[test]
    fn default_taxonomy_gets_the_canonical_layout() {
        let taxonomy = slj_sim::default_taxonomy();
        let layout = part_layout(&taxonomy);
        assert_eq!(layout, PartLayout::canonical_five());
    }

    #[test]
    fn signals_capture_silhouette_and_keypoints() {
        let mut slots = FrameSlots::new();
        slots.silhouette = BinaryImage::from_ascii("##\n#.\n");
        slots.keypoints.head = Some((1.0, 0.0));
        slots.keypoints.foot = Some((0.0, 1.0));
        let signals = frame_signals(&slots, None);
        let sil = signals.silhouette.expect("silhouette");
        assert_eq!(sil.foreground, 3);
        assert_eq!((sil.width, sil.height), (2, 2));
        assert_eq!(signals.parts[0], Some((1.0, 0.0)));
        assert_eq!(signals.parts[4], Some((0.0, 1.0)));
        assert_eq!(signals.parts[1], None);
        assert!(signals.decision.is_none());
    }

    #[test]
    fn decision_fields_map_across() {
        let slots = FrameSlots::new();
        let decision = Decision {
            best_pose: 3,
            best_prob: 0.7,
            accepted: false,
            majority_exempt: false,
            th_margin: -0.1,
            carry_forward: true,
        };
        let signals = frame_signals(&slots, Some(&decision));
        let d = signals.decision.expect("decision");
        assert_eq!(d.best_prob, 0.7);
        assert_eq!(d.th_margin, -0.1);
        assert!(!d.accepted);
        assert!(d.carry_forward);
    }
}
