//! Quantitative training (Section 4.1).
//!
//! The structure is fixed (the paper's "qualitative training" is the
//! design of Figure 7); training estimates the conditional probabilities
//! from labelled clips: stage transitions, pose transitions given the
//! previous pose and current stage, and the per-pose body-part area
//! tables — all from the *extracted* feature vectors under ground-truth
//! labels, exactly the paper's loop ("Once the feature vector is
//! received, the DBN can update the relation strength between the current
//! pose and the previous pose").

use crate::config::PipelineConfig;
use crate::engine::FrontEnd;
use crate::error::SljError;
use crate::model::{LearnedTables, PoseModel};
use slj_runtime::{Parallelism, ThreadPool};
use slj_sim::dataset::LabeledClip;
use slj_skeleton::features::{BodyPart, FeatureVector};
use slj_taxonomy::Taxonomy;

/// Trains [`PoseModel`]s from labelled clips.
///
/// The front-end pass fans clips out across a worker pool (one
/// [`FrontEnd`] — and therefore one set of scratch buffers — per
/// worker-claimed clip). The fan-out is **bit-identical** to the serial
/// pass at every thread count: results are collected in clip order and
/// table estimation stays serial.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: PipelineConfig,
    taxonomy: Taxonomy,
    parallelism: Parallelism,
}

impl Trainer {
    /// Creates a trainer with the default execution policy
    /// ([`Parallelism::Auto`], overridable via the `SLJ_THREADS`
    /// environment variable).
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidConfig`] on an invalid configuration.
    pub fn new(config: PipelineConfig) -> Result<Self, SljError> {
        config.validate()?;
        Ok(Trainer {
            config,
            taxonomy: slj_sim::taxonomy::default_taxonomy(),
            parallelism: Parallelism::default(),
        })
    }

    /// Trains against a different taxonomy artifact: table shapes,
    /// transition legality and in-stage smoothing all follow it, and the
    /// trained model carries it. Training labels must be indices into
    /// this taxonomy.
    #[must_use]
    pub fn with_taxonomy(mut self, taxonomy: Taxonomy) -> Self {
        self.taxonomy = taxonomy;
        self
    }

    /// The taxonomy this trainer trains against.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Sets the execution policy for the clip fan-out. Output is
    /// identical under every policy; this only trades wall-clock time.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The training configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.parallelism)
    }

    /// Runs the front end over every training clip and estimates all
    /// tables.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidTrainingSet`] on an empty set and
    /// propagates pipeline errors.
    pub fn train(&self, clips: &[LabeledClip]) -> Result<PoseModel, SljError> {
        let sequences = self.extract_sequences(clips)?;
        self.train_from_sequences(&sequences)
    }

    /// Trains from clips reloaded from disk ([`slj_sim::io::StoredClip`])
    /// — the path real labelled video would take into the system. Only
    /// the frames, the background and the per-frame labels are needed.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidTrainingSet`] on an empty set or a
    /// frame/label length mismatch; propagates pipeline errors.
    pub fn train_from_stored(
        &self,
        clips: &[slj_sim::io::StoredClip],
    ) -> Result<PoseModel, SljError> {
        if clips.is_empty() {
            return Err(SljError::InvalidTrainingSet("no training clips".into()));
        }
        let sequences = self
            .pool()
            .scoped_map(clips, |_, clip| self.extract_stored(clip))?
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        self.train_from_sequences(&sequences)
    }

    /// Front-end pass over one stored clip.
    fn extract_stored(&self, clip: &slj_sim::io::StoredClip) -> Result<TrainingSequence, SljError> {
        if clip.frames.len() != clip.labels.len() {
            return Err(SljError::InvalidTrainingSet(format!(
                "{} frames but {} labels",
                clip.frames.len(),
                clip.labels.len()
            )));
        }
        let mut front_end = FrontEnd::new(clip.background.clone(), &self.config)?;
        let mut frames = Vec::with_capacity(clip.frames.len());
        for (frame, &(stage, pose)) in clip.frames.iter().zip(&clip.labels) {
            front_end.process_frame(frame)?;
            frames.push(TrainingFrame {
                stage: stage.index(),
                pose: pose.index(),
                features: front_end.slots().features,
            });
        }
        Ok(TrainingSequence { frames })
    }

    /// Front-end pass: per clip, the (stage, pose, features) triples.
    ///
    /// Exposed so experiments can reuse the expensive extraction across
    /// several training configurations (e.g. the E5/E7 ablations).
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidTrainingSet`] on an empty set and
    /// propagates pipeline errors.
    pub fn extract_sequences(
        &self,
        clips: &[LabeledClip],
    ) -> Result<Vec<TrainingSequence>, SljError> {
        if clips.is_empty() {
            return Err(SljError::InvalidTrainingSet("no training clips".into()));
        }
        // Fan the clips out; errors are reported for the earliest failing
        // clip regardless of worker scheduling, so the error path is as
        // deterministic as the success path.
        self.pool()
            .scoped_map(clips, |_, clip| self.extract_labeled(clip))?
            .into_iter()
            .collect()
    }

    /// Front-end pass over one labelled clip.
    fn extract_labeled(&self, clip: &LabeledClip) -> Result<TrainingSequence, SljError> {
        let mut front_end = FrontEnd::new(clip.background.clone(), &self.config)?;
        let mut frames = Vec::with_capacity(clip.len());
        for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
            front_end.process_frame(frame)?;
            frames.push(TrainingFrame {
                stage: truth.stage.index(),
                pose: truth.pose.index(),
                features: front_end.slots().features,
            });
        }
        Ok(TrainingSequence { frames })
    }

    /// Estimates tables from pre-extracted sequences and assembles the
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidTrainingSet`] when empty; propagates
    /// model-assembly errors.
    pub fn train_from_sequences(
        &self,
        sequences: &[TrainingSequence],
    ) -> Result<PoseModel, SljError> {
        if sequences.is_empty() || sequences.iter().all(|s| s.frames.is_empty()) {
            return Err(SljError::InvalidTrainingSet("no training frames".into()));
        }
        let alpha = self.config.laplace_alpha;
        let n = self.config.partitions as usize;
        let p_count = self.taxonomy.pose_count();
        let s_count = self.taxonomy.stage_count();
        let n_parts = self.taxonomy.parts();
        for (ci, seq) in sequences.iter().enumerate() {
            for f in &seq.frames {
                if f.pose >= p_count || f.stage >= s_count {
                    return Err(SljError::InvalidTrainingSet(format!(
                        "clip {ci}: label (stage {}, pose {}) outside taxonomy \
                         ({s_count} stages, {p_count} poses)",
                        f.stage, f.pose
                    )));
                }
            }
        }

        // --- Stage transitions (legality from the taxonomy's prior). ---
        let mut stage_counts = vec![vec![0.0f64; s_count]; s_count];
        for seq in sequences {
            for w in seq.frames.windows(2) {
                stage_counts[w[0].stage][w[1].stage] += 1.0;
            }
        }
        let stage_transition: Vec<Vec<f64>> = (0..s_count)
            .map(|i| {
                let legal: Vec<usize> = (0..s_count)
                    .filter(|&j| self.taxonomy.can_transition(i, j))
                    .collect();
                let total: f64 = legal.iter().map(|&j| stage_counts[i][j] + alpha).sum();
                (0..s_count)
                    .map(|j| {
                        if legal.contains(&j) {
                            (stage_counts[i][j] + alpha) / total
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();

        // --- Pose transitions, with and without the stage flag. ---
        // Smoothing is restricted to poses of the conditioning stage
        // (the stage flag's whole point is to exclude cross-stage
        // confusions like "before jumping" → "landing").
        let mut pose_counts = vec![vec![vec![0.0f64; p_count]; s_count]; p_count];
        let mut pose_counts_nostage = vec![vec![0.0f64; p_count]; p_count];
        let mut pose_freq = vec![0.0f64; p_count];
        for seq in sequences {
            for f in &seq.frames {
                pose_freq[f.pose] += 1.0;
            }
            for w in seq.frames.windows(2) {
                let prev = w[0].pose;
                let cur = w[1].pose;
                pose_counts[prev][w[1].stage][cur] += 1.0;
                pose_counts_nostage[prev][cur] += 1.0;
            }
        }
        let pose_transition: Vec<Vec<Vec<f64>>> = (0..p_count)
            .map(|prev| {
                (0..s_count)
                    .map(|s| {
                        let in_stage: Vec<usize> = (0..p_count)
                            .filter(|&p| self.taxonomy.stage_of_pose(p) == s)
                            .collect();
                        let total: f64 = (0..p_count)
                            .map(|p| {
                                pose_counts[prev][s][p]
                                    + if in_stage.contains(&p) { alpha } else { 0.0 }
                            })
                            .sum();
                        if total <= 0.0 {
                            // Unseen row: uniform over the stage's poses.
                            return (0..p_count)
                                .map(|p| {
                                    if in_stage.contains(&p) {
                                        1.0 / in_stage.len() as f64
                                    } else {
                                        0.0
                                    }
                                })
                                .collect();
                        }
                        (0..p_count)
                            .map(|p| {
                                (pose_counts[prev][s][p]
                                    + if in_stage.contains(&p) { alpha } else { 0.0 })
                                    / total
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let pose_transition_nostage: Vec<Vec<f64>> = (0..p_count)
            .map(|prev| {
                let total: f64 = (0..p_count)
                    .map(|p| pose_counts_nostage[prev][p] + alpha)
                    .sum();
                (0..p_count)
                    .map(|p| (pose_counts_nostage[prev][p] + alpha) / total)
                    .collect()
            })
            .collect();
        let freq_total: f64 = pose_freq.iter().map(|c| c + alpha).sum();
        let pose_marginal: Vec<f64> = pose_freq.iter().map(|c| (c + alpha) / freq_total).collect();

        // --- Part-location tables P(part area | pose). ---
        let mut part_counts = vec![vec![vec![0.0f64; n + 1]; p_count]; n_parts];
        for seq in sequences {
            for f in &seq.frames {
                for (pi, part) in BodyPart::ALL.iter().enumerate() {
                    let state = f.features.area(*part).map(|a| a as usize).unwrap_or(n); // absent
                    part_counts[pi][f.pose][state] += 1.0;
                }
            }
        }
        let part_given_pose: Vec<Vec<Vec<f64>>> = part_counts
            .into_iter()
            .map(|per_pose| {
                per_pose
                    .into_iter()
                    .map(|row| {
                        let total: f64 = row.iter().map(|c| c + alpha).sum();
                        row.into_iter().map(|c| (c + alpha) / total).collect()
                    })
                    .collect()
            })
            .collect();

        PoseModel::from_tables_with(
            self.config.clone(),
            self.taxonomy.clone(),
            LearnedTables {
                stage_transition,
                pose_transition,
                pose_transition_nostage,
                pose_marginal,
                part_given_pose,
            },
        )
    }
}

/// One clip's worth of labelled training frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingSequence {
    /// Labelled frames in temporal order.
    pub frames: Vec<TrainingFrame>,
}

/// One labelled training frame. Labels are taxonomy-relative indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingFrame {
    /// Ground-truth stage index.
    pub stage: usize,
    /// Ground-truth pose index.
    pub pose: usize,
    /// Extracted feature vector.
    pub features: FeatureVector,
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_sim::pose::PoseClass;
    use slj_sim::stage::JumpStage;
    use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

    const P: usize = PoseClass::COUNT;
    const S: usize = JumpStage::COUNT;

    fn small_clips(n: usize) -> Vec<LabeledClip> {
        let sim = JumpSimulator::new(33);
        (0..n)
            .map(|i| {
                sim.generate_clip(&ClipSpec {
                    total_frames: 30,
                    seed: i as u64,
                    noise: NoiseConfig::default().scaled(0.5),
                    rare_poses: i % 2 == 1,
                    ..ClipSpec::default()
                })
            })
            .collect()
    }

    #[test]
    fn train_produces_valid_model() {
        let clips = small_clips(2);
        let model = Trainer::new(PipelineConfig::default())
            .unwrap()
            .train(&clips)
            .unwrap();
        let t = model.tables();
        // Stage transitions are row-stochastic and left-to-right.
        for (i, row) in t.stage_transition.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "stage row {i} sums to {sum}");
            for (j, &v) in row.iter().enumerate() {
                if !JumpStage::from_index(i).can_transition_to(JumpStage::from_index(j)) {
                    assert_eq!(v, 0.0, "illegal stage transition {i}->{j} got {v}");
                }
            }
        }
        // Pose transition rows are stochastic and stage-consistent.
        for prev in 0..P {
            for s in 0..S {
                let row = &t.pose_transition[prev][s];
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                for (p, &v) in row.iter().enumerate() {
                    if PoseClass::from_index(p).stage() != JumpStage::from_index(s) {
                        assert_eq!(v, 0.0, "cross-stage pose {p} in stage {s}");
                    }
                }
            }
        }
        // Part tables are stochastic.
        for part in &t.part_given_pose {
            for row in part {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_training_set_rejected() {
        let err = Trainer::new(PipelineConfig::default()).unwrap().train(&[]);
        assert!(matches!(err, Err(SljError::InvalidTrainingSet(_))));
    }

    #[test]
    fn trained_model_classifies_training_clip_reasonably() {
        let clips = small_clips(3);
        let trainer = Trainer::new(PipelineConfig::default()).unwrap();
        let model = trainer.train(&clips).unwrap();
        // Self-test on the first training clip: should beat chance by a
        // wide margin.
        let clip = &clips[0];
        let mut processor =
            crate::pipeline::FrameProcessor::new(clip.background.clone(), model.config()).unwrap();
        let mut clf = model.start_clip();
        let mut correct = 0;
        for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
            let processed = processor.process(frame).unwrap();
            let est = clf.step(&processed.features).unwrap();
            if est.pose == Some(truth.pose.index()) {
                correct += 1;
            }
        }
        let acc = correct as f64 / clip.len() as f64;
        assert!(acc > 0.35, "training-set accuracy {acc} too low");
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let clips = small_clips(3);
        let trainer = Trainer::new(PipelineConfig::default()).unwrap();
        let expected = trainer
            .clone()
            .with_parallelism(Parallelism::Serial)
            .extract_sequences(&clips)
            .unwrap();
        for threads in [2, 8] {
            let par = trainer
                .clone()
                .with_parallelism(Parallelism::Fixed(threads));
            assert_eq!(par.extract_sequences(&clips).unwrap(), expected);
            // The whole training path stays bit-identical too.
            let m_serial = trainer
                .clone()
                .with_parallelism(Parallelism::Serial)
                .train(&clips)
                .unwrap();
            let m_par = par.train(&clips).unwrap();
            assert_eq!(m_serial.tables(), m_par.tables());
        }
    }

    #[test]
    fn extract_sequences_shape() {
        let clips = small_clips(2);
        let trainer = Trainer::new(PipelineConfig::default()).unwrap();
        let seqs = trainer.extract_sequences(&clips).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].frames.len(), 30);
        // Re-training from sequences works and matches direct training.
        let m1 = trainer.train_from_sequences(&seqs).unwrap();
        let m2 = trainer.train(&clips).unwrap();
        assert_eq!(m1.tables(), m2.tables());
    }
}
