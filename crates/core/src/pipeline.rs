//! The per-frame front end: video frame → silhouette → skeleton → key
//! points → feature vector (Sections 2–3 and the front half of 4).
//!
//! [`FrameProcessor`] is the batch-friendly wrapper over the streaming
//! stage graph in [`crate::engine`]: each call runs the engine's stage
//! bank into reusable buffers and clones the slots into an owned
//! [`ProcessedFrame`]. Callers that want zero-copy access per frame
//! should use [`crate::engine::FrontEnd`] or
//! [`crate::engine::JumpSession`] directly.

use crate::config::PipelineConfig;
use crate::engine::{FrontEnd, StageTimings};
use crate::error::SljError;
use slj_imaging::binary::BinaryImage;
use slj_imaging::image::RgbImage;
use slj_skeleton::features::FeatureVector;
use slj_skeleton::keypoints::KeyPoints;
use slj_skeleton::pipeline::SkeletonResult;

/// Everything the front end derives from one frame.
#[derive(Debug, Clone)]
pub struct ProcessedFrame {
    /// The smoothed, largest-component silhouette (Figure 1(c)).
    pub silhouette: BinaryImage,
    /// Thinning + clean-up output (Figures 2–5).
    pub skeleton: SkeletonResult,
    /// Extracted key points.
    pub keypoints: KeyPoints,
    /// Area-encoded feature vector (Figure 6).
    pub features: FeatureVector,
    /// Wall-clock duration of every front-end stage for this frame.
    pub timings: StageTimings,
}

/// Processes frames of one clip against its known studio background.
///
/// A thin wrapper over [`FrontEnd`] that returns owned snapshots;
/// processing takes `&mut self` because the underlying stage buffers are
/// reused between calls.
#[derive(Debug, Clone)]
pub struct FrameProcessor {
    front_end: FrontEnd,
}

impl FrameProcessor {
    /// Creates a processor for a clip with the given background frame.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidConfig`] on an invalid configuration
    /// and propagates extraction-configuration errors.
    pub fn new(background: RgbImage, config: &PipelineConfig) -> Result<Self, SljError> {
        Ok(FrameProcessor {
            front_end: FrontEnd::new(background, config)?,
        })
    }

    /// The underlying stage bank.
    pub fn front_end(&self) -> &FrontEnd {
        &self.front_end
    }

    /// Extracts the smoothed jumper silhouette (Section 2): background
    /// subtraction, median filter, largest connected component.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the extractor.
    pub fn extract_silhouette(&mut self, frame: &RgbImage) -> Result<BinaryImage, SljError> {
        Ok(self.front_end.extract_silhouette(frame)?.clone())
    }

    /// Runs the full front end on one frame.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors; an empty silhouette yields an empty
    /// feature vector rather than an error.
    pub fn process(&mut self, frame: &RgbImage) -> Result<ProcessedFrame, SljError> {
        self.front_end.process_frame(frame)?;
        Ok(self.front_end.snapshot())
    }

    /// Processes a silhouette that is already extracted (used when
    /// training from ground-truth silhouettes or in ablations).
    ///
    /// # Panics
    ///
    /// Does not panic; the post-extraction stages are infallible on any
    /// silhouette.
    // slj-check: allow(perf/transitive-hot-path-alloc) — ProcessedFrame is the owning batch-API view by contract; zero-copy callers read the FrontEnd slots directly
    pub fn process_silhouette(&mut self, silhouette: &BinaryImage) -> ProcessedFrame {
        self.front_end
            .process_silhouette(silhouette)
            .expect("post-extraction stages are infallible");
        self.front_end.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_sim::{ClipSpec, JumpSimulator};

    fn clip() -> slj_sim::LabeledClip {
        JumpSimulator::new(21).generate_clip(&ClipSpec {
            total_frames: 25,
            ..ClipSpec::default()
        })
    }

    #[test]
    fn silhouette_extraction_matches_truth_well() {
        use slj_imaging::metrics::MaskMetrics;
        let clip = clip();
        let mut proc =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let mut total_iou = 0.0;
        for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
            let extracted = proc.extract_silhouette(frame).unwrap();
            let m = MaskMetrics::compare(&extracted, &truth.silhouette).unwrap();
            total_iou += m.iou();
        }
        let mean_iou = total_iou / clip.frames.len() as f64;
        assert!(
            mean_iou > 0.75,
            "extraction should roughly recover the silhouette, IoU {mean_iou}"
        );
    }

    #[test]
    fn process_produces_features_on_most_frames() {
        let clip = clip();
        let mut proc =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let mut with_waist = 0;
        for frame in &clip.frames {
            let out = proc.process(frame).unwrap();
            if out.keypoints.waist.is_some() {
                with_waist += 1;
            }
            assert_eq!(out.features.partitions(), 8);
        }
        assert!(
            with_waist * 10 >= clip.frames.len() * 8,
            "waist found on >=80% of frames, got {with_waist}/{}",
            clip.frames.len()
        );
    }

    #[test]
    fn empty_frame_yields_empty_features() {
        let clip = clip();
        let mut proc =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        // The background itself contains no jumper.
        let out = proc.process(&clip.background).unwrap();
        assert!(out.silhouette.is_empty());
        assert_eq!(out.features.present_parts(), 0);
    }

    #[test]
    fn process_silhouette_skips_extraction() {
        let clip = clip();
        let mut proc =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let out = proc.process_silhouette(&clip.truth[5].silhouette);
        assert!(out.keypoints.foot.is_some());
        assert!(out.features.present_parts() >= 3);
    }

    #[test]
    fn guo_hall_config_also_processes() {
        use slj_skeleton::pipeline::SkeletonConfig;
        use slj_skeleton::thinning::ThinningAlgorithm;
        let clip = clip();
        let config = PipelineConfig {
            skeleton: SkeletonConfig {
                algorithm: ThinningAlgorithm::GuoHall,
                ..SkeletonConfig::default()
            },
            ..PipelineConfig::default()
        };
        let mut proc = FrameProcessor::new(clip.background.clone(), &config).unwrap();
        let out = proc.process(&clip.frames[10]).unwrap();
        assert!(out.keypoints.foot.is_some());
        assert!(out.skeleton.skeleton.count_ones() > 20);
    }

    #[test]
    fn auto_threshold_config_extracts_comparable_silhouette() {
        use slj_imaging::background::ExtractionConfig;
        use slj_imaging::metrics::MaskMetrics;
        let clip = clip();
        let mut fixed =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let mut auto = FrameProcessor::new(
            clip.background.clone(),
            &PipelineConfig {
                extraction: ExtractionConfig {
                    auto_threshold: true,
                    ..ExtractionConfig::default()
                },
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        let a = fixed.extract_silhouette(&clip.frames[10]).unwrap();
        let b = auto.extract_silhouette(&clip.frames[10]).unwrap();
        // Otsu picks a higher cut, but the body core must agree.
        let m = MaskMetrics::compare(&b, &a).unwrap();
        assert!(m.iou() > 0.4, "fixed vs auto IoU {}", m.iou());
        assert!(!b.is_empty());
    }

    #[test]
    fn mismatched_frame_size_rejected() {
        let clip = clip();
        let mut proc =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let wrong = RgbImage::new(8, 8);
        assert!(proc.process(&wrong).is_err());
    }
}
