//! The DBN pose classifier (Section 4, Figure 7).
//!
//! Structure, exactly as the paper draws it:
//!
//! - a root **Pose** node (one state per taxonomy pose; 22 in the
//!   shipped standing-long-jump artifact) whose parents are the
//!   **previous pose** and the current **jumping stage** (4 states in
//!   the default artifact, a left-to-right chain on its own previous
//!   value);
//! - five hidden **body-part** nodes (Head, Chest, Hand, Knee, Foot),
//!   each `P(part-location | pose)` with domain {area 1..N, absent};
//! - N observed binary **Area** nodes with noisy-OR CPDs over the five
//!   parts.
//!
//! Per frame the classifier computes the area-evidence likelihood per
//! pose in closed form ([`slj_bayes::noisy_or::NoisyOrBank`]), folds it
//! into the temporal chain with a [`slj_bayes::dbn::ForwardFilter`], and
//! then applies the paper's decision rule: the winning pose must clear
//! its `Th_Pose` threshold unless it is the majority pose
//! ("standing & hand swung forward"); otherwise the frame is **Unknown**
//! and the most recently recognised pose is carried forward. The decided
//! pose is committed as the next frame's "previous pose" — the hard
//! hand-off the paper describes, which is also why "a misclassified
//! frame will still affect the classification of its subsequent frames".

use crate::config::{ObservationMode, PipelineConfig, TemporalMode};
use crate::error::SljError;
use slj_bayes::cpd::{NoisyOrCpd, TableCpd};
use slj_bayes::dbn::{ForwardFilter, InferenceMetrics, TwoSliceDbn, TwoSliceDbnBuilder};
use slj_bayes::factor::Factor;
use slj_bayes::noisy_or::NoisyOrBank;
use slj_bayes::variable::Variable;
use slj_obs::Registry;
use slj_runtime::ThreadPool;
use slj_skeleton::features::{BodyPart, FeatureVector};
use slj_taxonomy::Taxonomy;

/// The learned conditional tables, before model assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedTables {
    /// `stage_transition[i][j] = P(stage_t = j | stage_{t-1} = i)`.
    pub stage_transition: Vec<Vec<f64>>,
    /// `pose_transition[prev][stage][pose]`.
    pub pose_transition: Vec<Vec<Vec<f64>>>,
    /// `pose_transition_nostage[prev][pose]` (for [`TemporalMode::PrevPose`]).
    pub pose_transition_nostage: Vec<Vec<f64>>,
    /// `pose_marginal[pose]` (for [`TemporalMode::Static`]).
    pub pose_marginal: Vec<f64>,
    /// `part_given_pose[part][pose][state]` with `state ∈ {0..N areas,
    /// N = absent}`.
    pub part_given_pose: Vec<Vec<Vec<f64>>>,
}

/// Per-frame evidence, precomputed once and shared by every per-pose
/// evaluation (serial or fanned out).
enum FrameEvidence {
    /// Per-part state: the part's area index, or N for absent.
    PartStates(Vec<usize>),
    /// Which areas contain any key point.
    Occupancy(Vec<bool>),
}

/// A trained pose classifier.
#[derive(Debug, Clone)]
pub struct PoseModel {
    config: PipelineConfig,
    taxonomy: Taxonomy,
    tables: LearnedTables,
    dbn: TwoSliceDbn,
    stage_var: Variable,
    pose_var: Variable,
    bank: NoisyOrBank,
}

/// The classifier's verdict on one frame.
///
/// Poses and stages are **taxonomy-relative indices** — resolve names
/// through [`PoseModel::taxonomy`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoseEstimate {
    /// The decided pose index, or `None` for an Unknown frame.
    pub pose: Option<usize>,
    /// Posterior over all poses (after temporal filtering).
    pub posterior: Vec<f64>,
    /// Most probable stage index.
    pub stage: usize,
    /// Posterior over the stages.
    pub stage_posterior: Vec<f64>,
    /// The pose used as "previous pose" for the next frame (the decided
    /// pose, or the most recently recognised one on Unknown frames).
    pub committed_pose: usize,
}

/// The internals of one frame's `Th_Pose` decision, kept by the
/// classifier for tracing ([`SequenceClassifier::last_decision`]).
///
/// [`PoseEstimate`] carries the verdict; this records *why* — the
/// threshold margin, whether the majority-pose exemption fired, and
/// whether the carry-forward rule replaced an Unknown frame's pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Argmax pose index of the filtered posterior.
    pub best_pose: usize,
    /// Its posterior probability.
    pub best_prob: f64,
    /// Whether the frame was accepted (false → Unknown).
    pub accepted: bool,
    /// Whether acceptance came from the majority-pose exemption rather
    /// than clearing `Th_Pose`.
    pub majority_exempt: bool,
    /// `best_prob − Th_Pose`; negative on sub-threshold frames.
    pub th_margin: f64,
    /// Whether the Unknown frame carried the last recognised pose
    /// forward (always false on accepted frames).
    pub carry_forward: bool,
}

impl PoseModel {
    /// Assembles a model from learned tables against the default
    /// standing-long-jump taxonomy.
    ///
    /// # Errors
    ///
    /// As [`PoseModel::from_tables_with`].
    pub fn from_tables(config: PipelineConfig, tables: LearnedTables) -> Result<Self, SljError> {
        Self::from_tables_with(config, slj_sim::taxonomy::default_taxonomy(), tables)
    }

    /// Assembles a model from learned tables: the taxonomy sizes every
    /// node of the DBN (pose and stage cardinality, initial pose,
    /// majority exemption), the tables fill the CPDs.
    ///
    /// # Errors
    ///
    /// Propagates CPD/DBN validation errors (e.g. rows not summing to 1)
    /// and [`SljError::ConfigMismatch`] on shape problems or an invalid
    /// taxonomy.
    pub fn from_tables_with(
        config: PipelineConfig,
        taxonomy: Taxonomy,
        tables: LearnedTables,
    ) -> Result<Self, SljError> {
        config.validate()?;
        taxonomy
            .validate()
            .map_err(|e| SljError::ConfigMismatch(e.to_string()))?;
        let n = config.partitions as usize;
        let p = taxonomy.pose_count();
        let s = taxonomy.stage_count();
        // The skeleton front end always encodes the five canonical body
        // parts; a taxonomy cannot redefine the feature vector.
        if taxonomy.parts() != BodyPart::ALL.len() {
            return Err(SljError::ConfigMismatch(format!(
                "taxonomy declares {} body parts; the feature vector carries {}",
                taxonomy.parts(),
                BodyPart::ALL.len()
            )));
        }
        // Shape checks.
        if tables.stage_transition.len() != s
            || tables.pose_transition.len() != p
            || tables.pose_transition_nostage.len() != p
            || tables.pose_marginal.len() != p
            || tables.part_given_pose.len() != taxonomy.parts()
        {
            return Err(SljError::ConfigMismatch(
                "learned tables have wrong outer dimensions".into(),
            ));
        }
        for per_pose in &tables.part_given_pose {
            if per_pose.len() != p || per_pose.iter().any(|row| row.len() != n + 1) {
                return Err(SljError::ConfigMismatch(format!(
                    "part tables must be {p} poses x {} states",
                    n + 1
                )));
            }
        }

        // Temporal chain (interface: stage, pose).
        let mut b = TwoSliceDbnBuilder::new();
        let (stage_var, stage_prev) = b.interface_variable("stage", s);
        let (pose_var, pose_prev) = b.interface_variable("pose", p);
        match config.temporal {
            TemporalMode::Full => {
                // Slice 0: the paper's reset — previous stage is the
                // taxonomy's first stage ("before jumping"), previous
                // pose its declared initial pose.
                let init_stage_row = tables.stage_transition[0].clone();
                b.prior_cpd(
                    TableCpd::new(stage_var, vec![], init_stage_row).map_err(SljError::from)?,
                );
                let init_pose = taxonomy.initial_pose();
                let mut pose0 = Vec::with_capacity(s * p);
                for stage in 0..s {
                    pose0.extend(&tables.pose_transition[init_pose][stage]);
                }
                b.prior_cpd(
                    TableCpd::new(pose_var, vec![stage_var], pose0).map_err(SljError::from)?,
                );
                // Transitions.
                let mut stage_t = Vec::with_capacity(s * s);
                for row in &tables.stage_transition {
                    stage_t.extend(row);
                }
                b.transition_cpd(
                    TableCpd::new(stage_var, vec![stage_prev], stage_t).map_err(SljError::from)?,
                );
                let mut pose_t = Vec::with_capacity(p * s * p);
                for prev in 0..p {
                    for stage in 0..s {
                        pose_t.extend(&tables.pose_transition[prev][stage]);
                    }
                }
                b.transition_cpd(
                    TableCpd::new(pose_var, vec![pose_prev, stage_var], pose_t)
                        .map_err(SljError::from)?,
                );
            }
            TemporalMode::PrevPose => {
                // No stage flag: stage stays uniform, pose depends only on
                // the previous pose.
                b.prior_cpd(TableCpd::uniform(stage_var, vec![]));
                b.transition_cpd(TableCpd::uniform(stage_var, vec![]));
                let init_pose = taxonomy.initial_pose();
                b.prior_cpd(
                    TableCpd::new(
                        pose_var,
                        vec![],
                        tables.pose_transition_nostage[init_pose].clone(),
                    )
                    .map_err(SljError::from)?,
                );
                let mut pose_t = Vec::with_capacity(p * p);
                for prev in 0..p {
                    pose_t.extend(&tables.pose_transition_nostage[prev]);
                }
                b.transition_cpd(
                    TableCpd::new(pose_var, vec![pose_prev], pose_t).map_err(SljError::from)?,
                );
            }
            TemporalMode::Static => {
                // Per-frame BN only: the pose prior is the learned class
                // frequency, with no temporal coupling at all.
                b.prior_cpd(TableCpd::uniform(stage_var, vec![]));
                b.transition_cpd(TableCpd::uniform(stage_var, vec![]));
                b.prior_cpd(
                    TableCpd::new(pose_var, vec![], tables.pose_marginal.clone())
                        .map_err(SljError::from)?,
                );
                b.transition_cpd(
                    TableCpd::new(pose_var, vec![], tables.pose_marginal.clone())
                        .map_err(SljError::from)?,
                );
            }
        }
        let dbn = b.build().map_err(SljError::from)?;

        // The noisy-OR observation bank: five part parents, N area nodes.
        let n_parts = taxonomy.parts();
        let parts: Vec<Variable> = (0..n_parts).map(|i| Variable::new(i, n + 1)).collect();
        let mut areas = Vec::with_capacity(n);
        for k in 0..n {
            let child = Variable::new(n_parts + k, 2);
            let activation: Vec<Vec<f64>> = (0..n_parts)
                .map(|_| {
                    (0..=n)
                        .map(|s| if s == k { config.part_activation } else { 0.0 })
                        .collect()
                })
                .collect();
            areas.push(
                NoisyOrCpd::new(child, parts.clone(), activation, config.area_leak)
                    .map_err(SljError::from)?,
            );
        }
        let bank = NoisyOrBank::new(areas).map_err(SljError::from)?;

        Ok(PoseModel {
            config,
            taxonomy,
            tables,
            dbn,
            stage_var,
            pose_var,
            bank,
        })
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The taxonomy the model classifies against: resolves every pose,
    /// stage and fault index this crate reports into names and advice.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The learned tables.
    pub fn tables(&self) -> &LearnedTables {
        &self.tables
    }

    /// `P(frame evidence | pose)` for every pose — the per-pose BN of
    /// Figure 7(a), evaluated in closed form.
    ///
    /// Under [`ObservationMode::PartAssignment`] (default), evidence is
    /// the body-part area assignments; under
    /// [`ObservationMode::AreaOccupancy`], only the occupancy bits reach
    /// the network and the hidden parts are marginalised through the
    /// noisy-OR area nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::ConfigMismatch`] when the feature vector was
    /// encoded with a different partition count.
    pub fn observation_likelihood(&self, features: &FeatureVector) -> Result<Vec<f64>, SljError> {
        let evidence = self.frame_evidence(features)?;
        (0..self.taxonomy.pose_count())
            .map(|pose| self.pose_likelihood(&evidence, pose))
            .collect()
    }

    /// [`PoseModel::observation_likelihood`] with the per-pose BN
    /// evaluations fanned out across `pool`. Each pose's likelihood is
    /// computed by exactly one worker with the same arithmetic as the
    /// serial path, and the vector is assembled in pose order, so the
    /// result is **bit-identical** to the serial variant at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// As [`PoseModel::observation_likelihood`], plus
    /// [`SljError::Runtime`] on a worker panic.
    // slj-check: allow(perf/transitive-hot-path-alloc) — pool fan-out: the over-approximate graph routes scoped_map through unrelated pub methods (Server::spawn); the likelihood math itself borrows its CPT rows
    pub fn observation_likelihood_par(
        &self,
        features: &FeatureVector,
        pool: &ThreadPool,
    ) -> Result<Vec<f64>, SljError> {
        let evidence = self.frame_evidence(features)?;
        pool.scoped_map_n(self.taxonomy.pose_count(), |pose| {
            self.pose_likelihood(&evidence, pose)
        })?
        .into_iter()
        .collect()
    }

    /// Validates the feature shape and captures the per-frame evidence
    /// shared by every per-pose evaluation.
    fn frame_evidence(&self, features: &FeatureVector) -> Result<FrameEvidence, SljError> {
        let n = self.config.partitions as usize;
        if features.partitions() as usize != n {
            return Err(SljError::ConfigMismatch(format!(
                "features encoded with {} partitions, model expects {n}",
                features.partitions()
            )));
        }
        Ok(match self.config.observation {
            ObservationMode::PartAssignment => {
                // State per part: its area index, or N for absent.
                FrameEvidence::PartStates(
                    BodyPart::ALL
                        .iter()
                        .map(|&part| features.area(part).map(|a| a as usize).unwrap_or(n))
                        .collect(),
                )
            }
            ObservationMode::AreaOccupancy => FrameEvidence::Occupancy(features.occupied_areas()),
        })
    }

    /// `P(frame evidence | pose)` for one pose — the unit of work shared
    /// by the serial and parallel scoring paths.
    fn pose_likelihood(&self, evidence: &FrameEvidence, pose: usize) -> Result<f64, SljError> {
        match evidence {
            FrameEvidence::PartStates(states) => {
                // Mix each part's conditional with a uniform floor: a
                // single mis-assigned key point (a cut-off hand, a
                // boundary-frame knee) must not zero out the true pose.
                let n = self.config.partitions as usize;
                let floor = 0.08 / (n + 1) as f64;
                let mut lik = 1.0f64;
                for (p, &s) in states.iter().enumerate() {
                    lik *= 0.92 * self.tables.part_given_pose[p][pose][s] + floor;
                }
                Ok(lik.max(1e-12))
            }
            FrameEvidence::Occupancy(occupied) => {
                // Borrowed views into the CPT rows — `evidence_likelihood`
                // never needs owned copies, and this runs per frame.
                let dists: Vec<&[f64]> = self
                    .tables
                    .part_given_pose
                    .iter()
                    .map(|per_pose| per_pose[pose].as_slice())
                    .collect();
                let lik = self
                    .bank
                    .evidence_likelihood(&dists, occupied)
                    .map_err(SljError::from)?;
                // Floor so a surprising frame degrades gracefully
                // instead of zeroing the whole filter.
                Ok(lik.max(1e-12))
            }
        }
    }

    /// Starts classifying a new clip (resets to the paper's initial
    /// state).
    pub fn start_clip(&self) -> SequenceClassifier<'_> {
        SequenceClassifier {
            model: self,
            filter: ForwardFilter::new(&self.dbn),
            last_recognized: self.taxonomy.initial_pose(),
            last_decision: None,
        }
    }

    /// Offline smoothing of a whole clip: per-frame posterior marginals
    /// `P(stage_t, pose_t | all frames)` by forward–backward, with the
    /// frame's pose decided as the marginal argmax. Returns
    /// `(stage index, pose index)` per frame, taxonomy-relative.
    ///
    /// Sits between the paper's online filter (no hindsight) and
    /// [`PoseModel::decode_clip`] (jointly most probable sequence):
    /// smoothing maximises *per-frame* accuracy given hindsight.
    ///
    /// # Errors
    ///
    /// Propagates feature-shape mismatches and inference errors; an
    /// empty clip yields [`SljError::ConfigMismatch`].
    pub fn smooth_clip(&self, features: &[FeatureVector]) -> Result<Vec<(usize, usize)>, SljError> {
        let steps = self.likelihood_steps(features, None)?;
        self.smooth_steps(&steps, None)
    }

    /// [`PoseModel::smooth_clip`] with pass wall time recorded into
    /// `registry` (`bayes.smooth_ns`). Observation never changes output.
    ///
    /// # Errors
    ///
    /// As [`PoseModel::smooth_clip`].
    pub fn smooth_clip_observed(
        &self,
        features: &[FeatureVector],
        registry: &Registry,
    ) -> Result<Vec<(usize, usize)>, SljError> {
        let steps = self.likelihood_steps(features, None)?;
        self.smooth_steps(&steps, Some(InferenceMetrics::new(registry)))
    }

    /// [`PoseModel::smooth_clip`] with the per-frame likelihood
    /// evaluations fanned out across `pool` (each frame's evidence is
    /// independent; the forward–backward pass itself stays serial).
    /// Bit-identical to the serial variant at every thread count.
    ///
    /// # Errors
    ///
    /// As [`PoseModel::smooth_clip`], plus [`SljError::Runtime`] on a
    /// worker panic.
    // slj-check: allow(perf/transitive-hot-path-alloc) — one single-variable scope Vec per step builds the likelihood Factor; negligible next to the CPT math it feeds
    pub fn smooth_clip_par(
        &self,
        features: &[FeatureVector],
        pool: &ThreadPool,
    ) -> Result<Vec<(usize, usize)>, SljError> {
        let steps = self.likelihood_steps(features, Some(pool))?;
        self.smooth_steps(&steps, None)
    }

    /// Per-frame evidence likelihoods as DBN step inputs, computed
    /// serially or fanned out over an explicit pool.
    fn likelihood_steps(
        &self,
        features: &[FeatureVector],
        pool: Option<&ThreadPool>,
    ) -> Result<Vec<slj_bayes::dbn::StepInput>, SljError> {
        use slj_bayes::dbn::StepInput;
        if features.is_empty() {
            return Err(SljError::ConfigMismatch("empty clip".into()));
        }
        let step = |fv: &FeatureVector| -> Result<StepInput, SljError> {
            let lik = self.observation_likelihood(fv)?;
            Ok(StepInput::likelihood(
                Factor::new(vec![self.pose_var], lik).map_err(SljError::from)?,
            ))
        };
        match pool {
            Some(pool) => pool
                .scoped_map(features, |_, fv| step(fv))?
                .into_iter()
                .collect(),
            None => features.iter().map(step).collect(),
        }
    }

    fn smooth_steps(
        &self,
        steps: &[slj_bayes::dbn::StepInput],
        metrics: Option<InferenceMetrics>,
    ) -> Result<Vec<(usize, usize)>, SljError> {
        use slj_bayes::dbn::SmoothingPass;
        let mut pass = SmoothingPass::new(&self.dbn);
        if let Some(metrics) = metrics {
            pass = pass.with_metrics(metrics);
        }
        let gammas = pass.smooth(steps).map_err(SljError::from)?;
        gammas
            .into_iter()
            .map(|gamma| {
                let pose_marg = gamma.marginal(self.pose_var).map_err(SljError::from)?;
                let stage_marg = gamma.marginal(self.stage_var).map_err(SljError::from)?;
                let argmax = |v: &[f64]| {
                    v.iter()
                        .enumerate()
                        .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &x)| {
                            if x > bv {
                                (i, x)
                            } else {
                                (bi, bv)
                            }
                        })
                        .0
                };
                Ok((argmax(&stage_marg), argmax(&pose_marg)))
            })
            .collect()
    }

    /// Offline decoding of a whole clip: the jointly most probable
    /// (stage, pose) sequence given every frame's evidence, via Viterbi
    /// over the temporal chain.
    ///
    /// This is an *extension* beyond the paper, whose classifier is
    /// strictly online (frame-by-frame with hard hand-off). Batch review
    /// of a recorded clip — the teacher watching afterwards — can use
    /// hindsight; Experiment E11 compares the two. `Th_Pose` and the
    /// Unknown state do not apply here: the decoder always commits to
    /// the globally best sequence. Returns `(stage index, pose index)`
    /// per frame, taxonomy-relative.
    ///
    /// # Errors
    ///
    /// Propagates feature-shape mismatches and inference errors; an
    /// empty clip yields [`SljError::ConfigMismatch`].
    pub fn decode_clip(&self, features: &[FeatureVector]) -> Result<Vec<(usize, usize)>, SljError> {
        let steps = self.likelihood_steps(features, None)?;
        self.decode_steps(&steps, None)
    }

    /// [`PoseModel::decode_clip`] with pass wall time recorded into
    /// `registry` (`bayes.decode_ns`). Observation never changes output.
    ///
    /// # Errors
    ///
    /// As [`PoseModel::decode_clip`].
    pub fn decode_clip_observed(
        &self,
        features: &[FeatureVector],
        registry: &Registry,
    ) -> Result<Vec<(usize, usize)>, SljError> {
        let steps = self.likelihood_steps(features, None)?;
        self.decode_steps(&steps, Some(InferenceMetrics::new(registry)))
    }

    /// [`PoseModel::decode_clip`] with the per-frame likelihood
    /// evaluations fanned out across `pool` (the Viterbi recursion
    /// itself stays serial). Bit-identical to the serial variant at
    /// every thread count.
    ///
    /// # Errors
    ///
    /// As [`PoseModel::decode_clip`], plus [`SljError::Runtime`] on a
    /// worker panic.
    // slj-check: allow(perf/transitive-hot-path-alloc) — one single-variable scope Vec per step builds the likelihood Factor; negligible next to the CPT math it feeds
    pub fn decode_clip_par(
        &self,
        features: &[FeatureVector],
        pool: &ThreadPool,
    ) -> Result<Vec<(usize, usize)>, SljError> {
        let steps = self.likelihood_steps(features, Some(pool))?;
        self.decode_steps(&steps, None)
    }

    fn decode_steps(
        &self,
        steps: &[slj_bayes::dbn::StepInput],
        metrics: Option<InferenceMetrics>,
    ) -> Result<Vec<(usize, usize)>, SljError> {
        use slj_bayes::dbn::ViterbiDecoder;
        let mut decoder = ViterbiDecoder::new(&self.dbn);
        if let Some(metrics) = metrics {
            decoder = decoder.with_metrics(metrics);
        }
        let path = decoder.decode(steps).map_err(SljError::from)?;
        Ok(path
            .into_iter()
            .map(|m| (m[&self.stage_var.id()], m[&self.pose_var.id()]))
            .collect())
    }
}

/// Stateful per-clip classifier: feed frames in order, get
/// [`PoseEstimate`]s out.
#[derive(Debug, Clone)]
pub struct SequenceClassifier<'a> {
    model: &'a PoseModel,
    filter: ForwardFilter<'a>,
    last_recognized: usize,
    last_decision: Option<Decision>,
}

impl SequenceClassifier<'_> {
    /// The most recently recognised pose index (starts at the
    /// taxonomy's initial pose).
    pub fn last_recognized(&self) -> usize {
        self.last_recognized
    }

    /// The internals of the most recent frame's decision (`None` before
    /// the first step).
    pub fn last_decision(&self) -> Option<Decision> {
        self.last_decision
    }

    /// The taxonomy of the model this classifier runs (resolves the
    /// indices in its estimates).
    pub fn taxonomy(&self) -> &Taxonomy {
        self.model.taxonomy()
    }

    /// Records per-step DBN filter timing and factor sizes into
    /// `registry` from now on. Observation never changes decisions.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.filter.set_metrics(InferenceMetrics::new(registry));
    }

    /// Absorbs one frame's features and decides its pose.
    ///
    /// # Errors
    ///
    /// Propagates inference errors (impossible evidence cannot occur
    /// thanks to the likelihood floor).
    pub fn step(&mut self, features: &FeatureVector) -> Result<PoseEstimate, SljError> {
        let lik_values = self.model.observation_likelihood(features)?;
        self.step_with_values(lik_values)
    }

    /// [`SequenceClassifier::step`] with the per-pose BN evaluations
    /// fanned out across `pool` (the temporal filter update stays
    /// serial). Bit-identical to the serial variant at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// As [`SequenceClassifier::step`], plus [`SljError::Runtime`] on a
    /// worker panic.
    // slj-check: allow(perf/transitive-hot-path-alloc) — one single-variable scope Vec per step builds the likelihood Factor; negligible next to the CPT math it feeds
    pub fn step_par(
        &mut self,
        features: &FeatureVector,
        pool: &ThreadPool,
    ) -> Result<PoseEstimate, SljError> {
        let lik_values = self.model.observation_likelihood_par(features, pool)?;
        self.step_with_values(lik_values)
    }

    /// The shared filter update behind [`SequenceClassifier::step`] and
    /// [`SequenceClassifier::step_par`].
    fn step_with_values(&mut self, lik_values: Vec<f64>) -> Result<PoseEstimate, SljError> {
        let likelihood =
            Factor::new(vec![self.model.pose_var], lik_values).map_err(SljError::from)?;
        self.filter
            .step_with_likelihood(&[], Some(&likelihood))
            .map_err(SljError::from)?;
        let posterior = self
            .filter
            .marginal(self.model.pose_var)
            .map_err(SljError::from)?;
        let stage_posterior = self
            .filter
            .marginal(self.model.stage_var)
            .map_err(SljError::from)?;
        // First maximum wins ties, for determinism.
        let (best_idx, best_prob) =
            posterior
                .iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
        let best_pose = best_idx;
        // Th_Pose rule: every pose except the majority pose must clear
        // the threshold.
        let accepted = Some(best_pose) == self.model.taxonomy.majority_pose()
            || best_prob >= self.model.config.th_pose;
        let decided = if accepted { Some(best_pose) } else { None };
        self.last_decision = Some(Decision {
            best_pose,
            best_prob,
            accepted,
            majority_exempt: accepted && best_prob < self.model.config.th_pose,
            th_margin: best_prob - self.model.config.th_pose,
            carry_forward: !accepted && self.model.config.carry_forward,
        });

        // Hard hand-off: commit a definite previous pose for the next
        // frame. Unknown frames carry the most recent recognised pose
        // forward when enabled, else they commit the (rejected) argmax.
        let committed = match decided {
            Some(p) => {
                self.last_recognized = p;
                p
            }
            None if self.model.config.carry_forward => self.last_recognized,
            None => best_pose,
        };
        let (stage_idx, _) = stage_posterior.iter().enumerate().fold(
            (0usize, f64::NEG_INFINITY),
            |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            },
        );
        // Replace the pose belief with the committed pose (the paper
        // feeds the decided pose, not a distribution, into the next
        // frame). With `hard_commit` off, the soft posterior carries
        // over instead (the filter already holds it).
        if self.model.config.hard_commit {
            let stage_belief = Factor::new(vec![self.model.stage_var], stage_posterior.clone())
                .map_err(SljError::from)?;
            let pose_belief =
                Factor::indicator(self.model.pose_var, committed).map_err(SljError::from)?;
            let belief = stage_belief.product(&pose_belief).map_err(SljError::from)?;
            self.filter.set_belief(belief).map_err(SljError::from)?;
        } else if decided.is_none() && self.model.config.carry_forward {
            // Soft mode still honours the carry-forward rule on Unknown
            // frames: mix the carried pose into the belief.
            let stage_belief = Factor::new(vec![self.model.stage_var], stage_posterior.clone())
                .map_err(SljError::from)?;
            let pose_belief =
                Factor::indicator(self.model.pose_var, committed).map_err(SljError::from)?;
            let belief = stage_belief.product(&pose_belief).map_err(SljError::from)?;
            self.filter.set_belief(belief).map_err(SljError::from)?;
        }

        Ok(PoseEstimate {
            pose: decided,
            posterior,
            stage: stage_idx,
            stage_posterior,
            committed_pose: committed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_sim::pose::PoseClass;
    use slj_skeleton::features::FeatureCodec;
    use slj_skeleton::keypoints::KeyPoints;

    // Default-taxonomy dimensions, which the toy tables are built for.
    const P: usize = 22;
    const S: usize = 4;
    const PARTS: usize = 5;

    /// A synthetic model whose tables make pose 1 follow pose 0 etc.,
    /// with parts deterministically placed per pose.
    fn toy_tables(n: usize) -> LearnedTables {
        let uniform_s = vec![vec![1.0 / S as f64; S]; S];
        // Pose transition: strongly stay or advance by one.
        let mut pose_transition = vec![vec![vec![0.0; P]; S]; P];
        let mut nostage = vec![vec![0.0; P]; P];
        for prev in 0..P {
            for s in 0..S {
                for pose in 0..P {
                    let w = if pose == prev {
                        0.6
                    } else if pose == (prev + 1) % P {
                        0.3
                    } else {
                        0.1 / (P - 2) as f64
                    };
                    pose_transition[prev][s][pose] = w;
                }
            }
            nostage[prev] = pose_transition[prev][0].clone();
        }
        let pose_marginal = vec![1.0 / P as f64; P];
        // Parts: pose p puts every part in area p % n with prob 0.9.
        let mut part_given_pose = vec![vec![vec![0.0; n + 1]; P]; PARTS];
        for (part, tbl) in part_given_pose.iter_mut().enumerate() {
            for (pose, row) in tbl.iter_mut().enumerate() {
                let area = (pose + part) % n;
                for (s, v) in row.iter_mut().enumerate() {
                    *v = if s == area { 0.9 } else { 0.1 / n as f64 };
                }
            }
        }
        LearnedTables {
            stage_transition: uniform_s,
            pose_transition,
            pose_transition_nostage: nostage,
            pose_marginal,
            part_given_pose,
        }
    }

    fn toy_model(mode: TemporalMode) -> PoseModel {
        let config = PipelineConfig {
            temporal: mode,
            th_pose: 0.05,
            ..PipelineConfig::default()
        };
        PoseModel::from_tables(config, toy_tables(8)).unwrap()
    }

    fn features_for_areas(areas: &[u8]) -> FeatureVector {
        // Place head/chest/hand at synthetic positions mapping to areas.
        // Easier: build via KeyPoints at exact angles.
        let n = 8usize;
        let mut kp = KeyPoints {
            waist: Some((0.0, 0.0)),
            ..KeyPoints::default()
        };
        let point_in_area = |a: u8| -> (f64, f64) {
            let angle = (a as f64 + 0.5) * std::f64::consts::TAU / n as f64;
            (angle.cos() * 10.0, -angle.sin() * 10.0)
        };
        let mut iter = areas.iter();
        kp.head = iter.next().map(|&a| point_in_area(a));
        kp.chest = iter.next().map(|&a| point_in_area(a));
        kp.hand = iter.next().map(|&a| point_in_area(a));
        kp.knee = iter.next().map(|&a| point_in_area(a));
        kp.foot = iter.next().map(|&a| point_in_area(a));
        FeatureCodec::new(8).encode(&kp)
    }

    #[test]
    fn observation_likelihood_prefers_matching_pose() {
        let model = toy_model(TemporalMode::Static);
        // Pose 3 puts parts at areas (3,4,5,6,7).
        let fv = features_for_areas(&[3, 4, 5, 6, 7]);
        let lik = model.observation_likelihood(&fv).unwrap();
        // The toy tables are 8-periodic, so poses 3, 11 and 19 tie; pose
        // 3 must be among the maxima.
        let max = lik.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((lik[3] - max).abs() < 1e-12, "likelihoods: {lik:?}");
        assert!(lik[3] > lik[4] * 10.0, "pose 3 should dominate pose 4");
    }

    #[test]
    fn classifier_follows_evidence() {
        let model = toy_model(TemporalMode::Full);
        let mut clf = model.start_clip();
        // Strong pose-3 evidence repeatedly.
        for _ in 0..3 {
            let est = clf.step(&features_for_areas(&[3, 4, 5, 6, 7])).unwrap();
            assert!(est.posterior.len() == P);
        }
        let est = clf.step(&features_for_areas(&[3, 4, 5, 6, 7])).unwrap();
        assert_eq!(est.pose, Some(3));
    }

    #[test]
    fn temporal_smoothing_resists_single_frame_glitch() {
        let model = toy_model(TemporalMode::Full);
        let mut clf = model.start_clip();
        for _ in 0..4 {
            clf.step(&features_for_areas(&[3, 4, 5, 6, 7])).unwrap();
        }
        // One glitch frame pointing at a pose far from 3 (pose 11: areas
        // 3..7 shifted by 8 ≡ same? pick 9: areas (1,2,3,4,5)).
        let est = clf.step(&features_for_areas(&[1, 2, 3, 4, 5])).unwrap();
        // The prior from pose 3 pulls against the glitch; pose 9 is not
        // reachable in one hop from 3 under the toy transition, so the
        // posterior mass on 9 stays limited by the 0.1 smoothing floor.
        let p9 = est.posterior[9];
        let p_static = toy_model(TemporalMode::Static);
        let mut clf_static = p_static.start_clip();
        for _ in 0..4 {
            clf_static
                .step(&features_for_areas(&[3, 4, 5, 6, 7]))
                .unwrap();
        }
        let est_static = clf_static
            .step(&features_for_areas(&[1, 2, 3, 4, 5]))
            .unwrap();
        assert!(
            p9 < est_static.posterior[9],
            "temporal prior should damp the glitch: {} vs {}",
            p9,
            est_static.posterior[9]
        );
    }

    #[test]
    fn threshold_yields_unknown_and_carry_forward() {
        let config = PipelineConfig {
            temporal: TemporalMode::Static,
            th_pose: 0.9999, // nothing non-majority can clear this
            ..PipelineConfig::default()
        };
        let model = PoseModel::from_tables(config, toy_tables(8)).unwrap();
        let mut clf = model.start_clip();
        let est = clf.step(&features_for_areas(&[3, 4, 5, 6, 7])).unwrap();
        if est.pose.is_none() {
            // Carry-forward: the committed pose is the initial pose.
            assert_eq!(est.committed_pose, PoseClass::initial().index());
            assert_eq!(clf.last_recognized(), PoseClass::initial().index());
        } else {
            // Only the majority pose can be accepted under this
            // threshold.
            assert_eq!(est.pose, Some(PoseClass::majority().index()));
        }
    }

    #[test]
    fn majority_pose_bypasses_threshold() {
        let config = PipelineConfig {
            temporal: TemporalMode::Static,
            th_pose: 1.0,
            ..PipelineConfig::default()
        };
        let model = PoseModel::from_tables(config, toy_tables(8)).unwrap();
        let mut clf = model.start_clip();
        // Evidence pointing at the majority pose's areas.
        let m = PoseClass::majority().index();
        let areas: Vec<u8> = (0..5).map(|p| ((m + p) % 8) as u8).collect();
        let est = clf.step(&features_for_areas(&areas)).unwrap();
        assert_eq!(est.pose, Some(PoseClass::majority().index()));
    }

    #[test]
    fn mismatched_partitions_rejected() {
        let model = toy_model(TemporalMode::Full);
        let kp = KeyPoints {
            waist: Some((0.0, 0.0)),
            head: Some((0.0, -5.0)),
            ..KeyPoints::default()
        };
        let fv = FeatureCodec::new(12).encode(&kp);
        assert!(matches!(
            model.observation_likelihood(&fv),
            Err(SljError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn from_tables_validates_shapes() {
        let mut t = toy_tables(8);
        t.part_given_pose.pop();
        assert!(matches!(
            PoseModel::from_tables(PipelineConfig::default(), t),
            Err(SljError::ConfigMismatch(_))
        ));
        let mut t2 = toy_tables(8);
        t2.pose_marginal.pop();
        assert!(PoseModel::from_tables(PipelineConfig::default(), t2).is_err());
    }

    #[test]
    fn all_modes_build_and_step() {
        for mode in [
            TemporalMode::Static,
            TemporalMode::PrevPose,
            TemporalMode::Full,
        ] {
            let model = toy_model(mode);
            let mut clf = model.start_clip();
            let est = clf.step(&features_for_areas(&[0, 1, 2, 3, 4])).unwrap();
            assert_eq!(est.posterior.len(), P);
            assert_eq!(est.stage_posterior.len(), S);
        }
    }

    #[test]
    fn decode_clip_follows_strong_evidence() {
        let model = toy_model(TemporalMode::Full);
        // Evidence for pose 3, then pose 4 (a legal +1 transition).
        let seq: Vec<_> = (0..6)
            .map(|t| {
                let base = if t < 3 { 3usize } else { 4 };
                features_for_areas(&[
                    base as u8,
                    (base as u8 + 1) % 8,
                    (base as u8 + 2) % 8,
                    (base as u8 + 3) % 8,
                    (base as u8 + 4) % 8,
                ])
            })
            .collect();
        let path = model.decode_clip(&seq).unwrap();
        assert_eq!(path.len(), 6);
        // The decoded poses must be observation-equivalent to 3 then 4
        // (the toy tables are 8-periodic).
        for (t, (_, pose)) in path.iter().enumerate() {
            let expect = if t < 3 { 3 } else { 4 };
            assert_eq!(pose % 8, expect, "frame {t}: pose {pose}");
        }
    }

    #[test]
    fn decode_clip_rejects_empty() {
        let model = toy_model(TemporalMode::Full);
        assert!(model.decode_clip(&[]).is_err());
        assert!(model.smooth_clip(&[]).is_err());
    }

    #[test]
    fn smooth_clip_follows_strong_evidence() {
        let model = toy_model(TemporalMode::Full);
        let seq: Vec<_> = (0..5)
            .map(|_| features_for_areas(&[3, 4, 5, 6, 7]))
            .collect();
        let path = model.smooth_clip(&seq).unwrap();
        assert_eq!(path.len(), 5);
        for (t, (_, pose)) in path.iter().enumerate() {
            assert_eq!(pose % 8, 3, "frame {t}: pose {pose}");
        }
    }

    #[test]
    fn par_scoring_matches_serial_bitwise() {
        use crate::config::ObservationMode;
        for obs in [
            ObservationMode::PartAssignment,
            ObservationMode::AreaOccupancy,
        ] {
            let config = PipelineConfig {
                observation: obs,
                th_pose: 0.05,
                ..PipelineConfig::default()
            };
            let model = PoseModel::from_tables(config, toy_tables(8)).unwrap();
            let fv = features_for_areas(&[3, 4, 5, 6, 7]);
            let expected = model.observation_likelihood(&fv).unwrap();
            for threads in [1, 2, 8] {
                let pool = ThreadPool::fixed(threads);
                let got = model.observation_likelihood_par(&fv, &pool).unwrap();
                assert_eq!(got.len(), expected.len());
                for (pose, (a, b)) in got.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "pose {pose} differs under {obs:?} x{threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn step_par_matches_step() {
        let model = toy_model(TemporalMode::Full);
        let pool = ThreadPool::fixed(4);
        let mut serial = model.start_clip();
        let mut parallel = model.start_clip();
        for t in 0..6u8 {
            let fv = features_for_areas(&[t % 8, 4, 5, 6, 7]);
            let a = serial.step(&fv).unwrap();
            let b = parallel.step_par(&fv, &pool).unwrap();
            assert_eq!(a, b, "frame {t}");
        }
        assert_eq!(serial.last_recognized(), parallel.last_recognized());
    }

    #[test]
    fn decode_and_smooth_par_match_serial() {
        let model = toy_model(TemporalMode::Full);
        let seq: Vec<_> = (0..6)
            .map(|t: u8| features_for_areas(&[t % 8, (t + 1) % 8, 5, 6, 7]))
            .collect();
        let pool = ThreadPool::fixed(3);
        assert_eq!(
            model.decode_clip_par(&seq, &pool).unwrap(),
            model.decode_clip(&seq).unwrap()
        );
        assert_eq!(
            model.smooth_clip_par(&seq, &pool).unwrap(),
            model.smooth_clip(&seq).unwrap()
        );
        assert!(model.decode_clip_par(&[], &pool).is_err());
        assert!(model.smooth_clip_par(&[], &pool).is_err());
    }

    #[test]
    fn stage_posterior_advances_in_full_mode() {
        // With a left-to-right stage table, repeated steps should move
        // stage mass forward.
        let mut tables = toy_tables(8);
        tables.stage_transition = vec![
            vec![0.6, 0.4, 0.0, 0.0],
            vec![0.0, 0.6, 0.4, 0.0],
            vec![0.0, 0.0, 0.6, 0.4],
            vec![0.0, 0.0, 0.0, 1.0],
        ];
        let config = PipelineConfig {
            th_pose: 0.01,
            ..PipelineConfig::default()
        };
        let model = PoseModel::from_tables(config, tables).unwrap();
        let mut clf = model.start_clip();
        let mut first_stage = 0;
        for i in 0..12 {
            let est = clf.step(&features_for_areas(&[3, 4, 5, 6, 7])).unwrap();
            if i == 0 {
                first_stage = est.stage;
            }
            if i == 11 {
                assert!(est.stage >= first_stage, "stage should drift forward");
                assert!(
                    est.stage_posterior[3] > 0.5,
                    "after 12 frames mass reaches landing: {:?}",
                    est.stage_posterior
                );
            }
        }
    }
}
