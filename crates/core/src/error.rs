//! Error type for the end-to-end system.

use slj_bayes::BayesError;
use slj_imaging::ImagingError;
use std::fmt;

/// Errors surfaced by the pose-estimation system.
#[derive(Debug, Clone, PartialEq)]
pub enum SljError {
    /// An imaging-stage failure (extraction, filtering).
    Imaging(ImagingError),
    /// A probabilistic-model failure (learning, inference).
    Bayes(BayesError),
    /// The training set is unusable.
    InvalidTrainingSet(String),
    /// A clip/model mismatch (e.g. different partition counts).
    ConfigMismatch(String),
    /// A [`crate::config::PipelineConfig`] with out-of-range values.
    InvalidConfig(String),
    /// The execution layer failed (a worker-thread panic, surfaced as an
    /// error instead of aborting the process).
    Runtime(String),
}

impl fmt::Display for SljError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SljError::Imaging(e) => write!(f, "imaging error: {e}"),
            SljError::Bayes(e) => write!(f, "model error: {e}"),
            SljError::InvalidTrainingSet(msg) => write!(f, "invalid training set: {msg}"),
            SljError::ConfigMismatch(msg) => write!(f, "configuration mismatch: {msg}"),
            SljError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SljError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for SljError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SljError::Imaging(e) => Some(e),
            SljError::Bayes(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImagingError> for SljError {
    fn from(e: ImagingError) -> Self {
        SljError::Imaging(e)
    }
}

impl From<BayesError> for SljError {
    fn from(e: BayesError) -> Self {
        SljError::Bayes(e)
    }
}

impl From<slj_runtime::RuntimeError> for SljError {
    fn from(e: slj_runtime::RuntimeError) -> Self {
        SljError::Runtime(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SljError::from(ImagingError::InvalidDimensions {
            width: 0,
            height: 3,
        });
        assert!(e.to_string().contains("imaging error"));
        assert!(e.source().is_some());
        let e2 = SljError::InvalidTrainingSet("empty".into());
        assert!(e2.source().is_none());
        assert!(e2.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SljError>();
    }

    #[test]
    fn from_runtime_error() {
        let e = SljError::from(slj_runtime::RuntimeError::WorkerPanic("boom".into()));
        assert!(matches!(&e, SljError::Runtime(m) if m.contains("boom")));
        assert!(e.to_string().contains("runtime error"));
    }
}
