//! Per-frame decision trace records for `slj trace`.
//!
//! [`FrameRecord`] is the JSONL payload behind the `slj trace`
//! subcommand: one self-contained line per frame carrying the per-stage
//! timings of the engine pass, the full pose posterior, the `Th_Pose`
//! decision internals, and the jumping stage. The record is built from
//! a [`crate::engine::JumpSession`] after each push
//! ([`crate::engine::JumpSession::frame_record`]) and serialised with
//! the dependency-free [`JsonWriter`].
//!
//! Pose and jumping-stage names are resolved through the model's
//! [`Taxonomy`] (the machine idents — for the shipped standing-long-jump
//! artifact these match the legacy enum `Debug` names). The pipeline
//! step timings live under `pipeline_ns`, keeping "stage" for the
//! taxonomy's jumping stages.
//!
//! This path runs once per emitted frame, outside the steady-state
//! pipeline loop, so it is allowed to allocate (resolved pose names, the
//! posterior copy); the zero-alloc budget of the engine only covers the
//! disabled-tracing path.

use crate::engine::StageTimings;
use crate::model::{Decision, PoseEstimate};
use slj_obs::JsonWriter;
use slj_taxonomy::Taxonomy;

/// Schema version stamped into every record as `"schema"`.
///
/// Version 2 renamed the pipeline timing key from `stage_ns` to
/// `pipeline_ns` — `stage` now always means a taxonomy jumping stage.
/// Version 3 added the quality fields: `foreground_px` (silhouette
/// foreground pixel count, `null` when the record was built without an
/// engine pass) and `quality_flags` (the frame's quality reason codes,
/// `null` when no analyzer was attached — distinct from `[]`, a scored
/// clean frame).
pub const TRACE_SCHEMA_VERSION: u64 = 3;

/// One frame's decision trace: timings, posterior and decision rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Zero-based clip index (present when tracing multiple clips).
    pub clip: Option<u64>,
    /// Zero-based frame index within the clip.
    pub frame: u64,
    /// Per-pipeline-step nanoseconds, in execution order (seven
    /// front-end steps plus [`crate::engine::DBN_STAGE`]).
    pub pipeline_ns: Vec<(&'static str, u64)>,
    /// Decided pose name (taxonomy ident), or `None` for Unknown frames.
    pub pose: Option<String>,
    /// The pose fed to the next frame as "previous pose".
    pub committed: String,
    /// Posterior over all poses after temporal filtering.
    pub posterior: Vec<f64>,
    /// Posterior probability of the argmax pose.
    pub best_prob: f64,
    /// `best_prob − Th_Pose`; negative on sub-threshold frames.
    pub th_margin: f64,
    /// Whether the frame cleared the decision rule.
    pub accepted: bool,
    /// Whether acceptance came from the majority-pose exemption.
    pub majority_exempt: bool,
    /// Why the frame is Unknown, or `None` on accepted frames.
    pub unknown_reason: Option<&'static str>,
    /// Whether the carry-forward rule replaced the Unknown pose.
    pub carry_forward: bool,
    /// Most probable jumping stage name (taxonomy ident).
    pub stage: String,
    /// Posterior over the jumping stages.
    pub stage_posterior: Vec<f64>,
    /// Foreground pixels in the frame's cleaned silhouette, when known.
    pub foreground_px: Option<u64>,
    /// Quality flag mask of the frame (bits per
    /// [`slj_quality::Reason`]), or `None` when no analyzer scored it.
    pub quality_flags: Option<u32>,
}

impl FrameRecord {
    /// Assembles the record for one frame from the engine timings and
    /// the classifier outputs, resolving names through `taxonomy`.
    pub fn new(
        frame: u64,
        timings: &StageTimings,
        estimate: &PoseEstimate,
        decision: &Decision,
        taxonomy: &Taxonomy,
    ) -> Self {
        FrameRecord {
            clip: None,
            frame,
            pipeline_ns: timings
                .iter()
                .map(|(name, elapsed)| {
                    (name, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX))
                })
                .collect(),
            pose: estimate.pose.map(|p| taxonomy.pose_ident(p).to_string()),
            committed: taxonomy.pose_ident(estimate.committed_pose).to_string(),
            posterior: estimate.posterior.clone(),
            best_prob: decision.best_prob,
            th_margin: decision.th_margin,
            accepted: decision.accepted,
            majority_exempt: decision.majority_exempt,
            unknown_reason: if decision.accepted {
                None
            } else {
                Some("below_th_pose")
            },
            carry_forward: decision.carry_forward,
            stage: taxonomy.stage_ident(estimate.stage).to_string(),
            stage_posterior: estimate.stage_posterior.clone(),
            foreground_px: None,
            quality_flags: None,
        }
    }

    /// Serialises the record as one JSON object on a single line
    /// (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(TRACE_SCHEMA_VERSION);
        if let Some(clip) = self.clip {
            w.key("clip");
            w.u64(clip);
        }
        w.key("frame");
        w.u64(self.frame);
        w.key("pipeline_ns");
        w.begin_object();
        for (name, ns) in &self.pipeline_ns {
            w.key(name);
            w.u64(*ns);
        }
        w.end_object();
        w.key("pose");
        match &self.pose {
            Some(pose) => w.string(pose),
            None => w.null(),
        }
        w.key("committed");
        w.string(&self.committed);
        w.key("posterior");
        w.begin_array();
        for p in &self.posterior {
            w.f64(*p);
        }
        w.end_array();
        w.key("best_prob");
        w.f64(self.best_prob);
        w.key("th_margin");
        w.f64(self.th_margin);
        w.key("accepted");
        w.bool(self.accepted);
        w.key("majority_exempt");
        w.bool(self.majority_exempt);
        w.key("unknown_reason");
        match self.unknown_reason {
            Some(reason) => w.string(reason),
            None => w.null(),
        }
        w.key("carry_forward");
        w.bool(self.carry_forward);
        w.key("stage");
        w.string(&self.stage);
        w.key("stage_posterior");
        w.begin_array();
        for p in &self.stage_posterior {
            w.f64(*p);
        }
        w.end_array();
        w.key("foreground_px");
        match self.foreground_px {
            Some(px) => w.u64(px),
            None => w.null(),
        }
        w.key("quality_flags");
        match self.quality_flags {
            Some(mask) => {
                w.begin_array();
                for reason in slj_quality::Reason::decode(mask) {
                    w.string(reason.code());
                }
                w.end_array();
            }
            None => w.null(),
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_record() -> FrameRecord {
        let taxonomy = slj_sim::default_taxonomy();
        let mut timings = StageTimings::default();
        timings.push("background_subtraction", Duration::from_nanos(1200));
        timings.push("dbn_step", Duration::from_nanos(800));
        let estimate = PoseEstimate {
            pose: None,
            posterior: vec![0.25, 0.75],
            stage: slj_sim::JumpStage::Jumping.index(),
            stage_posterior: vec![0.1, 0.6, 0.2, 0.1],
            committed_pose: slj_sim::PoseClass::StandingHandsOverlap.index(),
        };
        let decision = Decision {
            best_pose: slj_sim::PoseClass::StandingHandsOverlap.index(),
            best_prob: 0.75,
            accepted: false,
            majority_exempt: false,
            th_margin: -0.05,
            carry_forward: true,
        };
        FrameRecord::new(3, &timings, &estimate, &decision, &taxonomy)
    }

    #[test]
    fn unknown_frame_record_round_trips_decision_fields() {
        let record = sample_record();
        assert_eq!(record.frame, 3);
        assert_eq!(record.pose, None);
        assert_eq!(record.unknown_reason, Some("below_th_pose"));
        assert!(record.carry_forward);
        assert_eq!(record.pipeline_ns.len(), 2);
        assert_eq!(record.pipeline_ns[1], ("dbn_step", 800));
    }

    #[test]
    fn to_json_is_single_line_with_stable_keys() {
        let mut record = sample_record();
        record.clip = Some(7);
        let json = record.to_json();
        assert!(!json.contains('\n'));
        for key in [
            "\"schema\":3",
            "\"clip\":7",
            "\"frame\":3",
            "\"pipeline_ns\":{\"background_subtraction\":1200,\"dbn_step\":800}",
            "\"pose\":null",
            "\"committed\":\"StandingHandsOverlap\"",
            "\"unknown_reason\":\"below_th_pose\"",
            "\"carry_forward\":true",
            "\"stage\":\"Jumping\"",
            "\"foreground_px\":null",
            "\"quality_flags\":null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn quality_fields_serialise_when_present() {
        let mut record = sample_record();
        record.foreground_px = Some(420);
        record.quality_flags = Some(
            slj_quality::Reason::TemporalJump.bit() | slj_quality::Reason::SilhouetteSpike.bit(),
        );
        let json = record.to_json();
        assert!(json.contains("\"foreground_px\":420"), "{json}");
        assert!(
            json.contains("\"quality_flags\":[\"temporal_jump\",\"silhouette_spike\"]"),
            "{json}"
        );
        // A scored clean frame is [], not null.
        record.quality_flags = Some(0);
        assert!(record.to_json().contains("\"quality_flags\":[]"));
    }

    #[test]
    fn accepted_frame_has_no_unknown_reason() {
        let taxonomy = slj_sim::default_taxonomy();
        let mut timings = StageTimings::default();
        timings.push("features", Duration::from_nanos(10));
        let estimate = PoseEstimate {
            pose: Some(slj_sim::PoseClass::StandingHandsOverlap.index()),
            posterior: vec![1.0],
            stage: slj_sim::JumpStage::BeforeJumping.index(),
            stage_posterior: vec![1.0, 0.0, 0.0, 0.0],
            committed_pose: slj_sim::PoseClass::StandingHandsOverlap.index(),
        };
        let decision = Decision {
            best_pose: slj_sim::PoseClass::StandingHandsOverlap.index(),
            best_prob: 0.9,
            accepted: true,
            majority_exempt: false,
            th_margin: 0.2,
            carry_forward: false,
        };
        let record = FrameRecord::new(0, &timings, &estimate, &decision, &taxonomy);
        assert_eq!(record.unknown_reason, None);
        assert!(record.to_json().contains("\"unknown_reason\":null"));
    }
}
