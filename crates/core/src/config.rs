//! System configuration.

use crate::error::SljError;
use slj_imaging::background::ExtractionConfig;
use slj_skeleton::pipeline::SkeletonConfig;

/// Which temporal information the classifier uses — the ablation axis of
/// Experiment E5 (Figure 7(a) vs 7(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TemporalMode {
    /// Static per-frame BN: no previous pose, no stage flag
    /// (Figure 7(a)).
    Static,
    /// Previous pose only, no jumping-stage flag.
    PrevPose,
    /// The full DBN: previous pose + jumping-stage flag (Figure 7(b)).
    #[default]
    Full,
}

/// How frame evidence enters the per-pose network.
///
/// Section 4.2 of the paper describes the testing phase as assigning
/// body parts to the key points and combining them as the feature
/// vector; the network diagram (Figure 7) shows binary Area nodes as the
/// observed layer. Both readings are implemented:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObservationMode {
    /// Evidence is the per-part area assignment: the likelihood is
    /// `Π_p P(part_p = area_p | pose)` (the testing-phase reading;
    /// default).
    #[default]
    PartAssignment,
    /// Evidence is only which areas are occupied: the likelihood
    /// marginalises the hidden parts through the noisy-OR area nodes
    /// (the literal Figure 7 reading).
    AreaOccupancy,
}

/// All knobs of the end-to-end system, with the paper's values as
/// defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Section 2 extraction parameters (`Th_Object = 20`).
    pub extraction: ExtractionConfig,
    /// Median-filter window for silhouette smoothing (Figure 1(c)).
    pub median_window: usize,
    /// Section 3 skeleton clean-up parameters (branch threshold 10).
    pub skeleton: SkeletonConfig,
    /// Number of angular areas around the waist (8 in the paper;
    /// Section 6 suggests more).
    pub partitions: u8,
    /// `Th_Pose`: minimum posterior for a non-majority pose to be
    /// accepted; below it the frame is Unknown.
    pub th_pose: f64,
    /// Laplace smoothing strength for all learned tables.
    pub laplace_alpha: f64,
    /// Noisy-OR activation strength: probability that a body part lying
    /// in an area turns that area node on.
    pub part_activation: f64,
    /// Noisy-OR leak: probability an area node fires with no part in it.
    pub area_leak: f64,
    /// Temporal structure (Experiment E5 ablation).
    pub temporal: TemporalMode,
    /// Evidence pathway into the per-pose network.
    pub observation: ObservationMode,
    /// Commit the decided pose as a hard point-mass for the next frame
    /// (the paper's "the current pose will be input to the next frame as
    /// the previous pose"). When `false`, the full posterior is carried
    /// instead (classical soft filtering). Hard commitment reproduces
    /// the paper's consecutive-error behaviour.
    pub hard_commit: bool,
    /// Carry the most recently recognised pose forward over Unknown
    /// frames (Section 5's fix; Experiment E8 ablates it).
    pub carry_forward: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            extraction: ExtractionConfig::default(),
            median_window: 3,
            skeleton: SkeletonConfig::default(),
            partitions: 8,
            th_pose: 0.25,
            laplace_alpha: 0.5,
            part_activation: 0.92,
            area_leak: 0.02,
            temporal: TemporalMode::Full,
            observation: ObservationMode::PartAssignment,
            hard_commit: true,
            carry_forward: true,
        }
    }
}

impl PipelineConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidConfig`] when probabilities fall
    /// outside `[0, 1]`, the partition count is zero, or the median
    /// window is even.
    pub fn validate(&self) -> Result<(), SljError> {
        if self.partitions == 0 {
            return Err(SljError::InvalidConfig(
                "partitions must be non-zero".into(),
            ));
        }
        if self.median_window % 2 == 0 {
            return Err(SljError::InvalidConfig(format!(
                "median window must be odd, got {}",
                self.median_window
            )));
        }
        for (name, p) in [
            ("th_pose", self.th_pose),
            ("part_activation", self.part_activation),
            ("area_leak", self.area_leak),
        ] {
            if !((0.0..=1.0).contains(&p) && p.is_finite()) {
                return Err(SljError::InvalidConfig(format!(
                    "{name} must be a probability, got {p}"
                )));
            }
        }
        if !(self.laplace_alpha.is_finite() && self.laplace_alpha >= 0.0) {
            return Err(SljError::InvalidConfig(
                "laplace_alpha must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_values() {
        let c = PipelineConfig::default();
        assert_eq!(c.extraction.th_object, 20, "Th_Object = 20");
        assert_eq!(c.skeleton.min_branch_len, 10, "branch threshold = 10");
        assert_eq!(c.partitions, 8, "eight areas");
        assert_eq!(c.temporal, TemporalMode::Full);
        assert!(c.carry_forward);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn even_median_window_rejected() {
        let err = PipelineConfig {
            median_window: 4,
            ..PipelineConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(&err, SljError::InvalidConfig(m) if m.contains("median window")));
    }

    #[test]
    fn bad_threshold_rejected() {
        let err = PipelineConfig {
            th_pose: 1.5,
            ..PipelineConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(&err, SljError::InvalidConfig(m) if m.contains("probability")));
    }

    #[test]
    fn zero_partitions_rejected() {
        let err = PipelineConfig {
            partitions: 0,
            ..PipelineConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, SljError::InvalidConfig(_)));
    }

    #[test]
    fn temporal_mode_default_is_full() {
        assert_eq!(TemporalMode::default(), TemporalMode::Full);
    }
}
