//! End-to-end pose estimation for standing long jumps — the paper's
//! primary contribution.
//!
//! The crate wires the substrates together into the system of Sections
//! 2–5 plus the scoring end use the introduction motivates:
//!
//! 1. [`engine`] — the streaming stage graph: frame → silhouette
//!    (background subtraction, median filter, largest component) →
//!    Zhang-Suen skeleton → graph clean-up → key points → area feature
//!    vector, each step a swappable [`engine::FrameStage`] writing into
//!    reusable buffers, with per-stage timings. [`engine::JumpSession`]
//!    couples it with the DBN filter for one-frame-in, one-estimate-out
//!    streaming; [`pipeline`] is the batch-friendly wrapper.
//! 2. [`model`] — the DBN classifier of Figure 7: a stage/pose temporal
//!    chain filtered forward per frame, with the per-pose observation
//!    network (hidden body parts, noisy-OR area nodes) evaluated in
//!    closed form; `Th_Pose` thresholds with the majority-pose exemption
//!    and the carry-forward rule for Unknown frames.
//! 3. [`training`] — quantitative training: maximum-likelihood counts
//!    with Laplace smoothing from labelled clips (Section 4.1).
//! 4. [`evaluation`] — per-clip accuracy, confusion matrices and the
//!    consecutive-error burst analysis of Section 5.
//! 5. [`scoring`] — rule-based detection of movements violating the
//!    standing-long-jump standard (the system's purpose per Sections 1
//!    and 6).
//!
//! # Examples
//!
//! Train on a small synthetic set and classify a clip:
//!
//! ```no_run
//! use slj_core::config::PipelineConfig;
//! use slj_core::training::Trainer;
//! use slj_core::evaluation::evaluate;
//! use slj_sim::{JumpSimulator, NoiseConfig};
//!
//! let sim = JumpSimulator::new(7);
//! let data = sim.paper_dataset(&NoiseConfig::default());
//! let config = PipelineConfig::default();
//! let model = Trainer::new(config.clone())?.train(&data.train)?;
//! let report = evaluate(&model, &data.test)?;
//! println!("overall accuracy: {:.1}%", 100.0 * report.overall_accuracy());
//! # Ok::<(), slj_core::SljError>(())
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod config;
pub mod engine;
pub mod error;
pub mod evaluation;
pub mod model;
pub mod model_io;
pub mod pipeline;
pub mod quality;
pub mod scoring;
pub mod trace;
pub mod training;

pub use config::{PipelineConfig, TemporalMode};
pub use engine::{
    FrameSlots, FrameStage, FrontEnd, JumpSession, StageTimings, DBN_STAGE, PIPELINE_STAGE_NAMES,
};
pub use error::SljError;
pub use evaluation::{evaluate, ClipReport, EvalReport};
pub use model::{Decision, PoseEstimate, PoseModel, SequenceClassifier};
pub use pipeline::{FrameProcessor, ProcessedFrame};
pub use scoring::{assess_pose_sequence, assess_with_taxonomy, AssessedFault, DetectedFault};
pub use trace::FrameRecord;
pub use training::Trainer;
