//! The streaming frame engine: one frame in, one committed pose out.
//!
//! The paper's system is inherently online — "the current pose will be
//! input to the next frame as the previous pose" — yet the original
//! front end re-allocated every intermediate image on every frame and
//! only exposed whole-clip batch helpers. This module restructures the
//! front half of the system around three ideas:
//!
//! 1. **A stage graph.** Each of the seven front-end steps (background
//!    subtraction, median filter, largest component, thinning, graph
//!    clean-up, key points, feature codec) is a [`FrameStage`] writing
//!    into shared [`FrameSlots`]. Stages are boxed and swappable, so
//!    ablations can replace or drop a step without forking the driver.
//! 2. **Reusable scratch buffers.** [`FrameSlots`] owns every
//!    intermediate image and working buffer; the stages use the
//!    `_into`-style APIs of `slj-imaging`/`slj-skeleton`, so steady-state
//!    per-frame work does no image-buffer allocation.
//! 3. **Per-stage timing and observability.** Every pass records a
//!    [`StageTimings`] entry per stage — the data behind
//!    `slj stream --timings` and the steady-state benches. A session
//!    additionally times the DBN filter step under the same roof
//!    ([`DBN_STAGE`]), can record every stage into an
//!    [`slj_obs::Registry`] ([`JumpSession::attach_metrics`]), and can
//!    emit one `frame.decision` trace event per frame
//!    ([`JumpSession::set_tracer`]) carrying the `Th_Pose` margin,
//!    Unknown/carry-forward flags, and the jumping stage.
//!
//! [`JumpSession`] couples a [`FrontEnd`] with the DBN filter of
//! [`crate::model`], accepting one [`RgbImage`] at a time and returning
//! the committed [`PoseEstimate`] online.
//!
//! # Examples
//!
//! ```no_run
//! use slj_core::config::PipelineConfig;
//! use slj_core::engine::JumpSession;
//! use slj_core::training::Trainer;
//! use slj_sim::{JumpSimulator, NoiseConfig};
//!
//! let sim = JumpSimulator::new(7);
//! let data = sim.paper_dataset(&NoiseConfig::default());
//! let model = Trainer::new(PipelineConfig::default())?.train(&data.train)?;
//! let clip = &data.test[0];
//! let mut session = JumpSession::new(&model, clip.background.clone())?;
//! for frame in &clip.frames {
//!     let estimate = session.push_frame(frame)?;
//!     println!("pose: {:?} ({:?})", estimate.pose, session.last_timings().total());
//! }
//! # Ok::<(), slj_core::SljError>(())
//! ```

use crate::config::PipelineConfig;
use crate::error::SljError;
use crate::model::{PoseEstimate, PoseModel, SequenceClassifier};
use crate::pipeline::ProcessedFrame;
use slj_imaging::background::{BackgroundSubtractor, ExtractScratch};
use slj_imaging::binary::BinaryImage;
use slj_imaging::filter::{median_filter_binary_into, FilterScratch};
use slj_imaging::image::RgbImage;
use slj_imaging::morphology::Connectivity;
use slj_imaging::region::{largest_component_into, LabelScratch};
use slj_obs::{Counter, Histogram, Registry, Stopwatch, Tracer, Value};
use slj_quality::{ClipAnalyzer, PartLayout, QualityConfig, QualityReport};
use slj_skeleton::features::FeatureCodec;
use slj_skeleton::graph::GraphScratch;
use slj_skeleton::keypoints::KeypointExtractor;
use slj_skeleton::pipeline::{SkeletonConfig, SkeletonResult, StageStats};
use slj_skeleton::thinning::{ThinningAlgorithm, ThinningScratch};
use slj_skeleton::PixelGraph;
use std::fmt;
use std::time::Duration;

/// Names of the standard seven stages, in execution order.
pub const PIPELINE_STAGE_NAMES: [&str; 7] = [
    "background_subtraction",
    "median_filter",
    "largest_component",
    "thinning",
    "graph_cleanup",
    "keypoints",
    "features",
];

/// Timing-entry name of the DBN filter step, appended by
/// [`JumpSession`] after the front-end stages so engine and model
/// timing share one path.
pub const DBN_STAGE: &str = "dbn_step";

/// Index of the first stage that runs when the silhouette is already
/// extracted (ground-truth silhouettes, ablations).
const SILHOUETTE_START: usize = 3;

/// Wall-clock duration of every stage of one pass.
///
/// An alias for the observability crate's [`slj_obs::SpanTimings`] —
/// the engine's former ad-hoc timing vector now lives there so every
/// layer shares one timing type. Entries appear in execution order;
/// stages skipped on a pass (e.g. the extraction stages when processing
/// a ready-made silhouette) report [`Duration::ZERO`] so every pass
/// exposes the full stage list.
pub use slj_obs::SpanTimings as StageTimings;

/// All intermediate buffers of one front-end pass, owned across frames so
/// the stages can reuse them.
///
/// The result fields (`silhouette`, `skeleton`, `keypoints`, `features`)
/// hold the outputs of the most recent pass; the scratch fields are the
/// working storage of the `_into`-style stage implementations. Everything
/// is public so custom [`FrameStage`]s can read and write the same slots
/// as the standard bank.
#[derive(Debug, Clone, Default)]
pub struct FrameSlots {
    /// Raw background-subtraction mask (before smoothing).
    pub raw_mask: BinaryImage,
    /// Median-filtered mask (before component selection).
    pub smoothed: BinaryImage,
    /// The smoothed, largest-component silhouette (Figure 1(c)).
    pub silhouette: BinaryImage,
    /// Thinning + clean-up output (Figures 2–5).
    pub skeleton: SkeletonResult,
    /// Extracted key points.
    pub keypoints: slj_skeleton::keypoints::KeyPoints,
    /// Area-encoded feature vector (Figure 6).
    pub features: slj_skeleton::features::FeatureVector,
    /// Background-subtraction working buffers.
    pub extract: ExtractScratch,
    /// Median-filter working buffers.
    pub filter: FilterScratch,
    /// Component-labelling working buffers.
    pub label: LabelScratch,
    /// Thinning deletion list.
    pub thinning: ThinningScratch,
    /// Reusable pixel-adjacency graph.
    pub pixel_graph: PixelGraph,
    /// Segment-graph construction buffers.
    pub graph: GraphScratch,
}

impl FrameSlots {
    /// Creates empty slots; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One step of the front end: reads and writes [`FrameSlots`].
///
/// The standard bank is built by [`FrontEnd::new`]; ablations can swap
/// individual stages via [`FrontEnd::from_stages`].
///
/// `Send` so a [`JumpSession`] holding a stage bank can migrate across
/// worker threads — the serving layer checks sessions in and out of a
/// shared table from whichever worker picks up the request.
pub trait FrameStage: fmt::Debug + Send {
    /// Stable stage name (one of [`PIPELINE_STAGE_NAMES`] for the standard bank).
    fn name(&self) -> &'static str;

    /// Runs the stage. `frame` is the input video frame, or `None` when
    /// the pass started from a ready-made silhouette.
    ///
    /// # Errors
    ///
    /// Stage-specific; the standard extraction stage propagates dimension
    /// mismatches.
    fn run(&self, frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError>;

    /// Clones the stage as a boxed trait object (lets stage banks derive
    /// `Clone`).
    fn box_clone(&self) -> Box<dyn FrameStage>;
}

impl Clone for Box<dyn FrameStage> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Stage 1: background subtraction against the clip's studio background.
#[derive(Debug, Clone)]
pub struct BackgroundSubtractionStage {
    subtractor: BackgroundSubtractor,
}

impl BackgroundSubtractionStage {
    /// Wraps a configured subtractor.
    pub fn new(subtractor: BackgroundSubtractor) -> Self {
        BackgroundSubtractionStage { subtractor }
    }
}

impl FrameStage for BackgroundSubtractionStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[0]
    }

    fn run(&self, frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        let frame = frame.ok_or_else(|| {
            SljError::ConfigMismatch("background subtraction needs an input frame".into())
        })?;
        self.subtractor
            .extract_into(frame, &mut slots.raw_mask, &mut slots.extract)?;
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// Stage 2: median smoothing of the raw mask.
#[derive(Debug, Clone)]
pub struct MedianFilterStage {
    window: usize,
}

impl MedianFilterStage {
    /// Creates the stage with an odd window size.
    pub fn new(window: usize) -> Self {
        MedianFilterStage { window }
    }
}

impl FrameStage for MedianFilterStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[1]
    }

    fn run(&self, _frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        median_filter_binary_into(
            &slots.raw_mask,
            self.window,
            &mut slots.smoothed,
            &mut slots.filter,
        )?;
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// Stage 3: keep the largest 8-connected component (or an empty mask).
#[derive(Debug, Clone, Default)]
pub struct LargestComponentStage;

impl FrameStage for LargestComponentStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[2]
    }

    fn run(&self, _frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        largest_component_into(
            &slots.smoothed,
            Connectivity::Eight,
            &mut slots.silhouette,
            &mut slots.label,
        );
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// Stage 4: parallel thinning of the silhouette.
#[derive(Debug, Clone)]
pub struct ThinningStage {
    algorithm: ThinningAlgorithm,
}

impl ThinningStage {
    /// Creates the stage for the given algorithm.
    pub fn new(algorithm: ThinningAlgorithm) -> Self {
        ThinningStage { algorithm }
    }
}

impl FrameStage for ThinningStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[3]
    }

    fn run(&self, _frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        let (passes, removed) = self.algorithm.run_into(
            &slots.silhouette,
            &mut slots.skeleton.raw_skeleton,
            &mut slots.thinning,
        );
        slots.skeleton.stats = StageStats {
            thinning_passes: passes,
            thinning_removed: removed,
            ..StageStats::default()
        };
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// Stage 5: graph conversion, loop cutting and branch pruning.
#[derive(Debug, Clone)]
pub struct GraphCleanupStage {
    config: SkeletonConfig,
}

impl GraphCleanupStage {
    /// Creates the stage with the clean-up configuration.
    pub fn new(config: SkeletonConfig) -> Self {
        GraphCleanupStage { config }
    }
}

impl FrameStage for GraphCleanupStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[4]
    }

    fn run(&self, _frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        slots.pixel_graph.rebuild(&slots.skeleton.raw_skeleton);
        slots.skeleton.stats.adjacent_junctions_before =
            slots.pixel_graph.adjacent_junction_count();
        slots
            .skeleton
            .graph
            .rebuild_from_pixel_graph(&slots.pixel_graph, &mut slots.graph);
        slots.skeleton.stats.clusters_merged = slots.skeleton.graph.merged_cluster_count();
        slots.skeleton.stats.loops_before = slots.skeleton.graph.cycle_rank();
        if self.config.cut_loops {
            let report = slj_skeleton::spanning::cut_loops(&mut slots.skeleton.graph);
            slots.skeleton.stats.loops_cut = report.loops_cut;
        }
        slots.skeleton.stats.short_branches_before = slj_skeleton::prune::short_branch_count(
            &slots.skeleton.graph,
            self.config.min_branch_len,
        );
        if self.config.prune {
            let report = slj_skeleton::prune::prune_branches(
                &mut slots.skeleton.graph,
                self.config.min_branch_len,
            );
            slots.skeleton.stats.branches_pruned = report.branches_removed;
            slots.skeleton.stats.prune_pixels_removed = report.pixels_removed;
        }
        slots
            .skeleton
            .graph
            .to_mask_into(&mut slots.skeleton.skeleton);
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// Stage 6: key-point extraction from the cleaned graph.
#[derive(Debug, Clone, Default)]
pub struct KeypointStage;

impl FrameStage for KeypointStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[5]
    }

    fn run(&self, _frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        slots.skeleton.keypoints = KeypointExtractor::new().extract(&slots.skeleton.graph);
        slots.keypoints = slots.skeleton.keypoints;
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// Stage 7: area-encoding the key points into the feature vector.
#[derive(Debug, Clone)]
pub struct FeatureStage {
    codec: FeatureCodec,
}

impl FeatureStage {
    /// Creates the stage with the given codec.
    pub fn new(codec: FeatureCodec) -> Self {
        FeatureStage { codec }
    }
}

impl FrameStage for FeatureStage {
    fn name(&self) -> &'static str {
        PIPELINE_STAGE_NAMES[6]
    }

    fn run(&self, _frame: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
        slots.features = self.codec.encode(&slots.keypoints);
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn FrameStage> {
        Box::new(self.clone())
    }
}

/// The streaming front end: a bank of [`FrameStage`]s plus the
/// [`FrameSlots`] they share.
///
/// One `FrontEnd` serves one clip (it owns that clip's background
/// subtractor). Feed frames with [`FrontEnd::process_frame`]; the
/// results stay in [`FrontEnd::slots`] until the next pass, and
/// [`FrontEnd::timings`] reports the per-stage wall-clock cost.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    stages: Vec<Box<dyn FrameStage>>,
    silhouette_start: usize,
    slots: FrameSlots,
    timings: StageTimings,
    metrics: Option<EngineMetrics>,
    quality: Option<ClipAnalyzer>,
    last_quality: u32,
}

/// Metric handles for one front end (see [`FrontEnd::attach_metrics`]).
///
/// Handles are resolved once at attach time — one per stage, in stage
/// order — so the per-frame path records into them without touching the
/// registry lock.
#[derive(Debug, Clone)]
struct EngineMetrics {
    /// `engine.frames` — frames processed.
    frames: Counter,
    /// `engine.frame.total_ns` — whole-pass wall time.
    total_ns: Histogram,
    /// `engine.pipeline.<name>.ns`, parallel to the stage bank.
    pipeline_ns: Vec<Histogram>,
}

impl FrontEnd {
    /// Builds the standard seven-stage bank for a clip with the given
    /// background frame.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidConfig`] on an invalid configuration
    /// and propagates extraction-configuration errors.
    pub fn new(background: RgbImage, config: &PipelineConfig) -> Result<Self, SljError> {
        config.validate()?;
        let subtractor = BackgroundSubtractor::new(background, config.extraction)?;
        let stages: Vec<Box<dyn FrameStage>> = vec![
            Box::new(BackgroundSubtractionStage::new(subtractor)),
            Box::new(MedianFilterStage::new(config.median_window)),
            Box::new(LargestComponentStage),
            Box::new(ThinningStage::new(config.skeleton.algorithm)),
            Box::new(GraphCleanupStage::new(config.skeleton)),
            Box::new(KeypointStage),
            Box::new(FeatureStage::new(FeatureCodec::new(config.partitions))),
        ];
        Ok(FrontEnd::from_stages(stages, SILHOUETTE_START))
    }

    /// Builds a custom bank. `silhouette_start` is the index of the first
    /// stage to run when a pass starts from a ready-made silhouette (the
    /// stages before it are the extraction stages).
    ///
    /// # Panics
    ///
    /// Panics when `silhouette_start` exceeds the stage count.
    pub fn from_stages(stages: Vec<Box<dyn FrameStage>>, silhouette_start: usize) -> Self {
        assert!(
            silhouette_start <= stages.len(),
            "silhouette_start {silhouette_start} out of range for {} stages",
            stages.len()
        );
        FrontEnd {
            stages,
            silhouette_start,
            slots: FrameSlots::new(),
            timings: StageTimings::default(),
            metrics: None,
            quality: None,
            last_quality: 0,
        }
    }

    /// Records per-stage and per-frame timing histograms into `registry`
    /// from now on (`engine.pipeline.<name>.ns`, `engine.frame.total_ns`,
    /// `engine.frames`). Observation never changes outputs.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let pipeline_ns = self
            .stages
            .iter()
            .map(|s| registry.histogram(&format!("engine.pipeline.{}.ns", s.name())))
            .collect();
        self.metrics = Some(EngineMetrics {
            frames: registry.counter("engine.frames"),
            total_ns: registry.histogram("engine.frame.total_ns"),
            pipeline_ns,
        });
    }

    /// Scores every subsequent pass with the quality analyzer: the
    /// silhouette-health and key-point signals of [`slj_quality`]
    /// (a bare front end has no classifier, so decision signals stay
    /// unset). Like [`FrontEnd::attach_metrics`], observation never
    /// changes outputs. See [`FrontEnd::quality_report`].
    pub fn attach_quality(&mut self, config: QualityConfig) {
        self.quality = Some(ClipAnalyzer::new(config, PartLayout::canonical_five()));
        self.last_quality = 0;
    }

    /// The quality flag mask of the most recent pass, or `None` when no
    /// analyzer is attached.
    pub fn last_quality_flags(&self) -> Option<u32> {
        self.quality.as_ref().map(|_| self.last_quality)
    }

    /// The clip-so-far quality report, or `None` when no analyzer is
    /// attached.
    pub fn quality_report(&self) -> Option<QualityReport> {
        self.quality.as_ref().map(ClipAnalyzer::report)
    }

    /// Stage names in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The slots holding the most recent pass's outputs.
    pub fn slots(&self) -> &FrameSlots {
        &self.slots
    }

    /// Per-stage timings of the most recent pass.
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    // slj-check: allow(perf/transitive-hot-path-alloc) — `stage.run` dispatches through the Stage trait; the over-approximate graph also matches unrelated pub `run` methods (Server::run), whose allocations are server startup, not frame work
    fn run_range(&mut self, frame: Option<&RgbImage>, start: usize) -> Result<(), SljError> {
        self.timings.clear();
        for stage in &self.stages[..start] {
            self.timings.push(stage.name(), Duration::ZERO);
        }
        for stage in &self.stages[start..] {
            let t0 = Stopwatch::start();
            stage.run(frame, &mut self.slots)?;
            self.timings.push(stage.name(), t0.elapsed());
        }
        if let Some(metrics) = &self.metrics {
            metrics.frames.inc();
            metrics.total_ns.record_duration(self.timings.total());
            for ((_, elapsed), hist) in self.timings.iter().zip(&metrics.pipeline_ns) {
                hist.record_duration(elapsed);
            }
        }
        if let Some(analyzer) = &mut self.quality {
            let signals = crate::quality::frame_signals(&self.slots, None);
            self.last_quality = analyzer.observe(&signals);
        }
        Ok(())
    }

    /// Runs the full bank on one video frame.
    ///
    /// # Errors
    ///
    /// Propagates stage errors (e.g. frame/background dimension
    /// mismatches).
    // slj-check: allow(perf/transitive-hot-path-alloc) — `stage.run` dispatches through the Stage trait; the over-approximate graph also matches unrelated pub `run` methods (Server::run), whose allocations are server startup, not frame work
    pub fn process_frame(&mut self, frame: &RgbImage) -> Result<(), SljError> {
        self.run_range(Some(frame), 0)
    }

    /// Runs the post-extraction stages on a ready-made silhouette
    /// (ground-truth silhouettes, ablations). The extraction stages
    /// report zero duration.
    ///
    /// # Errors
    ///
    /// Propagates stage errors.
    // slj-check: allow(perf/transitive-hot-path-alloc) — `stage.run` dispatches through the Stage trait; the over-approximate graph also matches unrelated pub `run` methods (Server::run), whose allocations are server startup, not frame work
    pub fn process_silhouette(&mut self, silhouette: &BinaryImage) -> Result<(), SljError> {
        self.slots.silhouette.copy_from(silhouette);
        self.run_range(None, self.silhouette_start)
    }

    /// Runs only the extraction stages and returns the silhouette slot.
    ///
    /// # Errors
    ///
    /// Propagates stage errors.
    pub fn extract_silhouette(&mut self, frame: &RgbImage) -> Result<&BinaryImage, SljError> {
        self.timings.clear();
        for stage in &self.stages[..self.silhouette_start] {
            let t0 = Stopwatch::start();
            stage.run(Some(frame), &mut self.slots)?;
            self.timings.push(stage.name(), t0.elapsed());
        }
        for stage in &self.stages[self.silhouette_start..] {
            self.timings.push(stage.name(), Duration::ZERO);
        }
        Ok(&self.slots.silhouette)
    }

    /// Clones the most recent pass's outputs into an owned
    /// [`ProcessedFrame`] (the batch-API view of the slots).
    pub fn snapshot(&self) -> ProcessedFrame {
        ProcessedFrame {
            silhouette: self.slots.silhouette.clone(),
            skeleton: self.slots.skeleton.clone(),
            keypoints: self.slots.keypoints,
            features: self.slots.features,
            timings: self.timings.clone(),
        }
    }
}

/// A streaming pose-estimation session: the paper's online loop, one
/// frame at a time.
///
/// Couples a [`FrontEnd`] for the clip with the trained model's DBN
/// filter. Each [`JumpSession::push_frame`] runs the seven-stage front
/// end into reusable buffers, steps the filter, and returns the
/// committed [`PoseEstimate`] for that frame. The DBN step is timed as
/// an eighth entry ([`DBN_STAGE`]) in [`JumpSession::last_timings`].
#[derive(Debug)]
pub struct JumpSession<'m> {
    front_end: FrontEnd,
    classifier: SequenceClassifier<'m>,
    frames_processed: usize,
    /// Front-end timings plus the [`DBN_STAGE`] entry; the vector is
    /// reused across frames so the steady state allocates nothing.
    timings: StageTimings,
    tracer: Tracer,
    dbn_ns: Option<Histogram>,
    quality: Option<ClipAnalyzer>,
    last_quality: u32,
}

impl<'m> JumpSession<'m> {
    /// Starts a session for a clip with the given background frame.
    ///
    /// # Errors
    ///
    /// Returns [`SljError::InvalidConfig`] on an invalid model
    /// configuration and propagates extraction-configuration errors.
    pub fn new(model: &'m PoseModel, background: RgbImage) -> Result<Self, SljError> {
        Ok(Self::with_front_end(
            model,
            FrontEnd::new(background, model.config())?,
        ))
    }

    /// Starts a session with a custom stage bank (ablations).
    pub fn with_front_end(model: &'m PoseModel, front_end: FrontEnd) -> Self {
        JumpSession {
            front_end,
            classifier: model.start_clip(),
            frames_processed: 0,
            timings: StageTimings::default(),
            tracer: Tracer::disabled(),
            dbn_ns: None,
            quality: None,
            last_quality: 0,
        }
    }

    /// Records the whole session into `registry` from now on: front-end
    /// stage histograms, the [`DBN_STAGE`] step histogram, and the DBN
    /// filter's inference metrics. Observation never changes estimates.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.front_end.attach_metrics(registry);
        self.classifier.attach_metrics(registry);
        self.dbn_ns = Some(registry.histogram(&format!("engine.pipeline.{DBN_STAGE}.ns")));
    }

    /// Scores every subsequent frame with the quality analyzer — the
    /// full signal set: `Th_Pose` margin runs and carry-forward streaks
    /// from the decision records, silhouette health, and key-point
    /// constraints resolved through the model taxonomy's part layout.
    /// Like [`JumpSession::attach_metrics`], observation never changes
    /// estimates. Read back per frame via
    /// [`JumpSession::last_quality_flags`] and per clip via
    /// [`JumpSession::quality_report`].
    pub fn attach_quality(&mut self, config: QualityConfig) {
        let layout = crate::quality::part_layout(self.taxonomy());
        self.quality = Some(ClipAnalyzer::new(config, layout));
        self.last_quality = 0;
    }

    /// The quality flag mask of the most recent frame (bits per
    /// [`slj_quality::Reason`]), or `None` when no analyzer is attached.
    pub fn last_quality_flags(&self) -> Option<u32> {
        self.quality.as_ref().map(|_| self.last_quality)
    }

    /// The clip-so-far quality report, or `None` when no analyzer is
    /// attached.
    pub fn quality_report(&self) -> Option<QualityReport> {
        self.quality.as_ref().map(ClipAnalyzer::report)
    }

    /// Emits one `frame.decision` trace event per frame into `tracer`
    /// from now on. A disabled tracer (the default) costs one branch per
    /// frame and allocates nothing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Processes one video frame and returns the committed estimate.
    ///
    /// # Errors
    ///
    /// Propagates front-end and inference errors.
    // slj-check: allow(perf/transitive-hot-path-alloc) — Tracer::event copies its field slice only when a sink is attached; production streaming runs with tracing disabled
    pub fn push_frame(&mut self, frame: &RgbImage) -> Result<PoseEstimate, SljError> {
        self.front_end.process_frame(frame)?;
        self.finish_frame()
    }

    /// Processes a ready-made silhouette and returns the committed
    /// estimate.
    ///
    /// # Errors
    ///
    /// Propagates front-end and inference errors.
    // slj-check: allow(perf/transitive-hot-path-alloc) — Tracer::event copies its field slice only when a sink is attached; production streaming runs with tracing disabled
    pub fn push_silhouette(&mut self, silhouette: &BinaryImage) -> Result<PoseEstimate, SljError> {
        self.front_end.process_silhouette(silhouette)?;
        self.finish_frame()
    }

    /// The classifier step plus timing/trace bookkeeping shared by both
    /// push paths.
    // slj-check: allow(perf/transitive-hot-path-alloc) — Tracer::event copies its field slice only when a sink is attached; production streaming runs with tracing disabled
    fn finish_frame(&mut self) -> Result<PoseEstimate, SljError> {
        self.frames_processed += 1;
        let t0 = Stopwatch::start();
        let estimate = self.classifier.step(&self.front_end.slots().features)?;
        let dbn_elapsed = t0.elapsed();
        self.timings.clear();
        for (name, elapsed) in self.front_end.timings().iter() {
            self.timings.push(name, elapsed);
        }
        self.timings.push(DBN_STAGE, dbn_elapsed);
        if let Some(hist) = &self.dbn_ns {
            hist.record_duration(dbn_elapsed);
        }
        if let Some(analyzer) = &mut self.quality {
            let decision = self.classifier.last_decision();
            let signals = crate::quality::frame_signals(self.front_end.slots(), decision.as_ref());
            self.last_quality = analyzer.observe(&signals);
        }
        if self.tracer.enabled() {
            if let Some(d) = self.classifier.last_decision() {
                self.tracer.event(
                    "frame.decision",
                    &[
                        ("frame", Value::U64(self.frames_processed as u64 - 1)),
                        (
                            "pose",
                            match estimate.pose {
                                Some(p) => Value::I64(p as i64),
                                None => Value::I64(-1),
                            },
                        ),
                        ("committed", Value::U64(estimate.committed_pose as u64)),
                        ("stage", Value::U64(estimate.stage as u64)),
                        ("best_prob", Value::F64(d.best_prob)),
                        ("th_margin", Value::F64(d.th_margin)),
                        ("accepted", Value::Bool(d.accepted)),
                        ("majority_exempt", Value::Bool(d.majority_exempt)),
                        ("carry_forward", Value::Bool(d.carry_forward)),
                        (
                            "total_ns",
                            Value::U64(
                                u64::try_from(self.timings.total().as_nanos()).unwrap_or(u64::MAX),
                            ),
                        ),
                    ],
                );
            }
        }
        Ok(estimate)
    }

    /// Builds the JSONL trace record for the most recent frame from the
    /// session's timings and the classifier's decision internals.
    ///
    /// # Panics
    ///
    /// Panics when no frame has been pushed yet.
    pub fn frame_record(&self, estimate: &PoseEstimate) -> crate::trace::FrameRecord {
        assert!(self.frames_processed > 0, "no frame pushed yet");
        let decision = self
            .classifier
            .last_decision()
            .expect("frames_processed > 0 implies a decision");
        let mut record = crate::trace::FrameRecord::new(
            self.frames_processed as u64 - 1,
            &self.timings,
            estimate,
            &decision,
            self.classifier.taxonomy(),
        );
        record.foreground_px = Some(self.front_end.slots().silhouette.count_ones() as u64);
        record.quality_flags = self.last_quality_flags();
        record
    }

    /// Per-stage timings of the most recent frame: the front-end stages
    /// plus the [`DBN_STAGE`] entry.
    pub fn last_timings(&self) -> &StageTimings {
        &self.timings
    }

    /// The front-end slots of the most recent frame (silhouette,
    /// skeleton, key points, features) — borrow, no copies.
    pub fn slots(&self) -> &FrameSlots {
        self.front_end.slots()
    }

    /// Clones the most recent frame's outputs into an owned
    /// [`ProcessedFrame`].
    pub fn last_frame(&self) -> ProcessedFrame {
        self.front_end.snapshot()
    }

    /// Number of frames pushed so far.
    pub fn frames_processed(&self) -> usize {
        self.frames_processed
    }

    /// The most recently recognised (non-Unknown) pose index.
    pub fn last_recognized(&self) -> usize {
        self.classifier.last_recognized()
    }

    /// The taxonomy of the session's model (resolves the indices in the
    /// estimates this session returns).
    pub fn taxonomy(&self) -> &slj_taxonomy::Taxonomy {
        self.classifier.taxonomy()
    }

    /// The decision internals of the most recent frame, or `None`
    /// before the first push. The serving layer pairs this with the
    /// estimate to build its wire decision records.
    pub fn last_decision(&self) -> Option<crate::model::Decision> {
        self.classifier.last_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FrameProcessor;
    use crate::training::Trainer;
    use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

    fn clip() -> slj_sim::LabeledClip {
        JumpSimulator::new(21).generate_clip(&ClipSpec {
            total_frames: 20,
            noise: NoiseConfig::default().scaled(0.5),
            ..ClipSpec::default()
        })
    }

    #[test]
    fn front_end_matches_batch_processor() {
        let clip = clip();
        let config = PipelineConfig::default();
        let mut fe = FrontEnd::new(clip.background.clone(), &config).unwrap();
        let mut proc = FrameProcessor::new(clip.background.clone(), &config).unwrap();
        for frame in clip.frames.iter().step_by(4) {
            fe.process_frame(frame).unwrap();
            let batch = proc.process(frame).unwrap();
            assert_eq!(fe.slots().silhouette, batch.silhouette);
            assert_eq!(fe.slots().skeleton.skeleton, batch.skeleton.skeleton);
            assert_eq!(fe.slots().skeleton.stats, batch.skeleton.stats);
            assert_eq!(fe.slots().keypoints, batch.keypoints);
            assert_eq!(fe.slots().features, batch.features);
        }
    }

    #[test]
    fn timings_cover_all_stages() {
        let clip = clip();
        let mut fe = FrontEnd::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        fe.process_frame(&clip.frames[0]).unwrap();
        let names: Vec<_> = fe.timings().iter().map(|(n, _)| n).collect();
        assert_eq!(names, PIPELINE_STAGE_NAMES.to_vec());
        assert!(fe.timings().total() > Duration::ZERO);
        for name in PIPELINE_STAGE_NAMES {
            assert!(fe.timings().get(name).is_some(), "missing stage {name}");
        }
    }

    #[test]
    fn silhouette_pass_zeroes_extraction_timings() {
        let clip = clip();
        let mut fe = FrontEnd::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        fe.process_silhouette(&clip.truth[5].silhouette).unwrap();
        assert_eq!(fe.timings().len(), PIPELINE_STAGE_NAMES.len());
        assert_eq!(
            fe.timings().get("background_subtraction"),
            Some(Duration::ZERO)
        );
        assert_eq!(fe.timings().get("median_filter"), Some(Duration::ZERO));
        assert!(fe.slots().keypoints.foot.is_some());
    }

    #[test]
    fn session_streams_committed_estimates() {
        let sim = JumpSimulator::new(55);
        let noise = NoiseConfig::default().scaled(0.5);
        let train: Vec<_> = (0..2)
            .map(|i| {
                sim.generate_clip(&ClipSpec {
                    total_frames: 25,
                    seed: i,
                    noise,
                    ..ClipSpec::default()
                })
            })
            .collect();
        let model = Trainer::new(PipelineConfig::default())
            .unwrap()
            .train(&train)
            .unwrap();
        let test = sim.generate_clip(&ClipSpec {
            total_frames: 25,
            seed: 9,
            noise,
            ..ClipSpec::default()
        });
        let mut session = JumpSession::new(&model, test.background.clone()).unwrap();
        let mut estimates = Vec::new();
        for frame in &test.frames {
            estimates.push(session.push_frame(frame).unwrap());
        }
        assert_eq!(session.frames_processed(), 25);
        assert_eq!(estimates.len(), 25);
        assert_eq!(session.last_timings().len(), PIPELINE_STAGE_NAMES.len() + 1);
        assert!(session.last_timings().get(DBN_STAGE).is_some());
        // The session's estimates must be byte-for-byte the batch path's.
        let mut proc = FrameProcessor::new(test.background.clone(), model.config()).unwrap();
        let mut clf = model.start_clip();
        for (frame, est) in test.frames.iter().zip(&estimates) {
            let batch_est = clf.step(&proc.process(frame).unwrap().features).unwrap();
            assert_eq!(est.pose, batch_est.pose);
            assert_eq!(est.posterior, batch_est.posterior);
            assert_eq!(est.committed_pose, batch_est.committed_pose);
        }
    }

    #[test]
    fn custom_bank_swaps_a_stage() {
        // Drop the median filter: an ablation bank with 6 stages.
        let clip = clip();
        let config = PipelineConfig::default();
        let subtractor =
            BackgroundSubtractor::new(clip.background.clone(), config.extraction).unwrap();
        // Without the median filter the largest-component stage must read
        // the raw mask, so wire a pass-through copy in its place.
        #[derive(Debug, Clone)]
        struct CopyRawStage;
        impl FrameStage for CopyRawStage {
            fn name(&self) -> &'static str {
                "copy_raw"
            }
            fn run(&self, _f: Option<&RgbImage>, slots: &mut FrameSlots) -> Result<(), SljError> {
                let raw = std::mem::take(&mut slots.raw_mask);
                slots.smoothed.copy_from(&raw);
                slots.raw_mask = raw;
                Ok(())
            }
            fn box_clone(&self) -> Box<dyn FrameStage> {
                Box::new(self.clone())
            }
        }
        let stages: Vec<Box<dyn FrameStage>> = vec![
            Box::new(BackgroundSubtractionStage::new(subtractor)),
            Box::new(CopyRawStage),
            Box::new(LargestComponentStage),
            Box::new(ThinningStage::new(config.skeleton.algorithm)),
            Box::new(GraphCleanupStage::new(config.skeleton)),
            Box::new(KeypointStage),
            Box::new(FeatureStage::new(FeatureCodec::new(config.partitions))),
        ];
        let mut fe = FrontEnd::from_stages(stages, 3);
        fe.process_frame(&clip.frames[10]).unwrap();
        assert_eq!(
            fe.slots().silhouette.dimensions(),
            clip.background.dimensions()
        );
        assert!(fe.timings().get("copy_raw").is_some());
        assert!(fe.timings().get("median_filter").is_none());
    }

    #[test]
    fn mismatched_frame_is_an_error() {
        let clip = clip();
        let mut fe = FrontEnd::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        assert!(fe.process_frame(&RgbImage::new(4, 4)).is_err());
    }
}
