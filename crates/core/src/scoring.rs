//! Standards-based movement assessment — the system's purpose.
//!
//! "According to the standing long jump standards, incorrect movements at
//! different stages of the jump can thus be identified" (abstract) and
//! "advices to the jumper can be given" (conclusion). The paper defers
//! rule details to its predecessor \[1\]; this module implements the rules
//! implied by the taxonomy: each required movement maps to poses that
//! must (or must not) appear in the recognised sequence.

use slj_sim::faults::JumpFault;
use slj_sim::pose::PoseClass;
use slj_sim::stage::JumpStage;
use std::fmt;

/// A standards violation detected in a recognised pose sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedFault {
    /// The violated rule.
    pub fault: JumpFault,
    /// The stage where the rule applies.
    pub stage: JumpStage,
    /// Human-readable advice for the jumper.
    pub advice: String,
}

impl fmt::Display for DetectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.fault, self.advice)
    }
}

/// Minimum number of matching frames for a movement to count as
/// performed (a single glitch frame should not satisfy a rule).
const MIN_EVIDENCE_FRAMES: usize = 2;

/// Assesses a recognised pose sequence against the standing-long-jump
/// standard. `None` entries (Unknown frames) are ignored.
///
/// Rules:
/// 1. The arms must swing backward during the preparation.
/// 2. The knees must bend (crouch) before take-off.
/// 3. The knees must tuck during the flight.
/// 4. The knees must bend again to absorb the landing.
/// 5. The jumper must not overbalance after landing.
///
/// # Examples
///
/// ```
/// use slj_core::scoring::assess_pose_sequence;
/// use slj_sim::script::JumpScript;
///
/// let perfect: Vec<_> = JumpScript::standard().frame_poses().into_iter().map(Some).collect();
/// assert!(assess_pose_sequence(&perfect).is_empty());
/// ```
pub fn assess_pose_sequence(poses: &[Option<PoseClass>]) -> Vec<DetectedFault> {
    let recognized: Vec<PoseClass> = poses.iter().flatten().copied().collect();
    let count = |pred: &dyn Fn(PoseClass) -> bool| -> usize {
        recognized.iter().filter(|&&p| pred(p)).count()
    };
    let mut faults = Vec::new();

    let arm_swing = count(&|p| {
        matches!(
            p,
            PoseClass::StandingHandsSwungBack
                | PoseClass::KneesBentHandsBack
                | PoseClass::WaistBentHandsBack
        )
    });
    if arm_swing < MIN_EVIDENCE_FRAMES {
        faults.push(DetectedFault {
            fault: JumpFault::NoArmSwing,
            stage: JumpStage::BeforeJumping,
            advice: "swing the arms backward during the preparation to build momentum".into(),
        });
    }

    let crouch = count(&|p| {
        matches!(
            p,
            PoseClass::KneesBentHandsBack | PoseClass::KneesBentHandsForward
        )
    });
    if crouch < MIN_EVIDENCE_FRAMES {
        faults.push(DetectedFault {
            fault: JumpFault::NoCrouch,
            stage: JumpStage::BeforeJumping,
            advice: "bend the knees deeply before take-off".into(),
        });
    }

    let tuck = count(&|p| p == PoseClass::AirborneTuck);
    if tuck < MIN_EVIDENCE_FRAMES {
        faults.push(DetectedFault {
            fault: JumpFault::NoTuck,
            stage: JumpStage::InAir,
            advice: "tuck the knees toward the chest at the top of the flight".into(),
        });
    }

    let absorb = count(&|p| p == PoseClass::LandingAbsorb);
    if absorb < MIN_EVIDENCE_FRAMES {
        faults.push(DetectedFault {
            fault: JumpFault::StiffLanding,
            stage: JumpStage::Landing,
            advice: "bend the knees on touch-down to absorb the impact".into(),
        });
    }

    let overbalance = count(&|p| p == PoseClass::LandingOverbalanced);
    if overbalance >= MIN_EVIDENCE_FRAMES {
        faults.push(DetectedFault {
            fault: JumpFault::Overbalance,
            stage: JumpStage::Landing,
            advice: "keep the torso over the feet after landing".into(),
        });
    }
    faults
}

/// Assesses a ground-truth (fully known) pose sequence.
pub fn assess_known_sequence(poses: &[PoseClass]) -> Vec<DetectedFault> {
    let wrapped: Vec<Option<PoseClass>> = poses.iter().copied().map(Some).collect();
    assess_pose_sequence(&wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_sim::script::JumpScript;

    fn poses_of(script: &JumpScript) -> Vec<PoseClass> {
        script.frame_poses()
    }

    #[test]
    fn perfect_jump_has_no_faults() {
        let faults = assess_known_sequence(&poses_of(&JumpScript::standard()));
        assert!(faults.is_empty(), "faults: {faults:?}");
        let faults2 = assess_known_sequence(&poses_of(&JumpScript::with_rare_poses()));
        // The rare-pose script has a single overbalance frame — below
        // the 2-frame evidence bar.
        assert!(faults2.is_empty(), "faults: {faults2:?}");
    }

    #[test]
    fn each_injected_fault_is_detected_exactly() {
        for fault in JumpFault::ALL {
            let script = fault.apply(&JumpScript::standard());
            let detected = assess_known_sequence(&poses_of(&script));
            // Overbalance replaces LandingRecovery with 3 frames of
            // LandingOverbalanced, triggering only that rule.
            assert!(
                detected.iter().any(|d| d.fault == fault),
                "{fault} not detected; got {detected:?}"
            );
            // No spurious detections of *other* injected-fault kinds.
            for d in &detected {
                assert_eq!(d.fault, fault, "spurious {d} while injecting {fault}");
            }
        }
    }

    #[test]
    fn unknown_frames_are_ignored() {
        let mut wrapped: Vec<Option<PoseClass>> = poses_of(&JumpScript::standard())
            .into_iter()
            .map(Some)
            .collect();
        // Blank out every third frame.
        for (i, slot) in wrapped.iter_mut().enumerate() {
            if i % 3 == 0 {
                *slot = None;
            }
        }
        let faults = assess_pose_sequence(&wrapped);
        assert!(
            faults.is_empty(),
            "a correct jump with unknowns should still pass: {faults:?}"
        );
    }

    #[test]
    fn single_glitch_frame_does_not_satisfy_a_rule() {
        // A jump with no tuck except one (likely misclassified) frame.
        let mut poses = poses_of(&JumpFault::NoTuck.apply(&JumpScript::standard()));
        let air_idx = poses
            .iter()
            .position(|p| p.stage() == JumpStage::InAir)
            .unwrap();
        poses[air_idx] = PoseClass::AirborneTuck;
        let faults = assess_known_sequence(&poses);
        assert!(
            faults.iter().any(|d| d.fault == JumpFault::NoTuck),
            "one glitch frame must not count as a tuck"
        );
    }

    #[test]
    fn empty_sequence_reports_missing_movements() {
        let faults = assess_pose_sequence(&[]);
        // Everything required is missing; overbalance is not reported.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().all(|d| d.fault != JumpFault::Overbalance));
    }

    #[test]
    fn display_contains_stage_and_advice() {
        let faults = assess_pose_sequence(&[]);
        let s = faults[0].to_string();
        assert!(s.contains("before jumping"));
        assert!(s.contains("swing"));
    }
}
