//! Standards-based movement assessment — the system's purpose.
//!
//! "According to the standing long jump standards, incorrect movements at
//! different stages of the jump can thus be identified" (abstract) and
//! "advices to the jumper can be given" (conclusion). The paper defers
//! rule details to its predecessor \[1\]; this module *interprets* the
//! declarative fault rules carried by a [`Taxonomy`] artifact: each rule
//! names evidence poses that must ([`Polarity::Require`]) or must not
//! ([`Polarity::Forbid`]) appear in the recognised sequence. The shipped
//! standing-long-jump artifact encodes the five rules the legacy
//! hard-coded scorer checked, so assessments are unchanged; a new
//! exercise ships its rules as data.
//!
//! [`Polarity::Require`]: slj_taxonomy::Polarity::Require
//! [`Polarity::Forbid`]: slj_taxonomy::Polarity::Forbid

use slj_sim::faults::JumpFault;
use slj_sim::pose::PoseClass;
use slj_sim::stage::JumpStage;
use slj_taxonomy::Taxonomy;
use std::fmt;

/// A standards violation detected in a recognised pose sequence
/// (legacy enum-typed view; see [`AssessedFault`] for the
/// taxonomy-relative form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedFault {
    /// The violated rule.
    pub fault: JumpFault,
    /// The stage where the rule applies.
    pub stage: JumpStage,
    /// Human-readable advice for the jumper.
    pub advice: String,
}

impl fmt::Display for DetectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.fault, self.advice)
    }
}

/// A fired fault rule with its names resolved through the taxonomy that
/// defined it. Works for any artifact, not just the shipped
/// standing-long-jump one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssessedFault {
    /// Index of the rule in [`Taxonomy::faults`].
    pub rule: usize,
    /// The rule's machine name (e.g. `NoTuck`).
    pub ident: String,
    /// The rule's report name (e.g. "no knee tuck at the top of the
    /// flight").
    pub display: String,
    /// Machine name of the stage the rule applies to (e.g. `InAir`).
    pub stage_ident: String,
    /// Report name of that stage (e.g. "in the air").
    pub stage_display: String,
    /// Human-readable advice for the jumper.
    pub advice: String,
}

impl fmt::Display for AssessedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.stage_display, self.display, self.advice
        )
    }
}

/// Interprets a taxonomy's fault rules over a recognised pose-index
/// sequence. `None` entries (Unknown frames) are ignored. Fired rules
/// come back in the artifact's declaration order.
pub fn assess_with_taxonomy(taxonomy: &Taxonomy, poses: &[Option<usize>]) -> Vec<AssessedFault> {
    taxonomy
        .assess(poses)
        .into_iter()
        .map(|r| {
            let rule = &taxonomy.faults()[r];
            AssessedFault {
                rule: r,
                ident: rule.ident.clone(),
                display: rule.display.clone(),
                stage_ident: taxonomy.stage_ident(rule.stage).to_string(),
                stage_display: taxonomy.stage_display(rule.stage).to_string(),
                advice: rule.advice.clone(),
            }
        })
        .collect()
}

/// Assesses a recognised pose sequence against the standing-long-jump
/// standard (the shipped default artifact). `None` entries (Unknown
/// frames) are ignored.
///
/// Rules (as data in [`slj_sim::default_taxonomy`]):
/// 1. The arms must swing backward during the preparation.
/// 2. The knees must bend (crouch) before take-off.
/// 3. The knees must tuck during the flight.
/// 4. The knees must bend again to absorb the landing.
/// 5. The jumper must not overbalance after landing.
///
/// # Examples
///
/// ```
/// use slj_core::scoring::assess_pose_sequence;
/// use slj_sim::script::JumpScript;
///
/// let perfect: Vec<_> = JumpScript::standard().frame_poses().into_iter().map(Some).collect();
/// assert!(assess_pose_sequence(&perfect).is_empty());
/// ```
pub fn assess_pose_sequence(poses: &[Option<PoseClass>]) -> Vec<DetectedFault> {
    let taxonomy = slj_sim::default_taxonomy();
    let indices: Vec<Option<usize>> = poses.iter().map(|p| p.map(PoseClass::index)).collect();
    // The default artifact's rules are JumpFault::ALL in declaration
    // order (asserted by slj_sim::taxonomy's tests), so a fired rule
    // index maps straight back onto the legacy enum.
    taxonomy
        .assess(&indices)
        .into_iter()
        .map(|r| {
            let rule = &taxonomy.faults()[r];
            DetectedFault {
                fault: JumpFault::ALL[r],
                stage: JumpStage::from_index(rule.stage),
                advice: rule.advice.clone(),
            }
        })
        .collect()
}

/// Assesses a ground-truth (fully known) pose sequence.
pub fn assess_known_sequence(poses: &[PoseClass]) -> Vec<DetectedFault> {
    let wrapped: Vec<Option<PoseClass>> = poses.iter().copied().map(Some).collect();
    assess_pose_sequence(&wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_sim::script::JumpScript;

    fn poses_of(script: &JumpScript) -> Vec<PoseClass> {
        script.frame_poses()
    }

    #[test]
    fn perfect_jump_has_no_faults() {
        let faults = assess_known_sequence(&poses_of(&JumpScript::standard()));
        assert!(faults.is_empty(), "faults: {faults:?}");
        let faults2 = assess_known_sequence(&poses_of(&JumpScript::with_rare_poses()));
        // The rare-pose script has a single overbalance frame — below
        // the 2-frame evidence bar.
        assert!(faults2.is_empty(), "faults: {faults2:?}");
    }

    #[test]
    fn each_injected_fault_is_detected_exactly() {
        for fault in JumpFault::ALL {
            let script = fault.apply(&JumpScript::standard());
            let detected = assess_known_sequence(&poses_of(&script));
            // Overbalance replaces LandingRecovery with 3 frames of
            // LandingOverbalanced, triggering only that rule.
            assert!(
                detected.iter().any(|d| d.fault == fault),
                "{fault} not detected; got {detected:?}"
            );
            // No spurious detections of *other* injected-fault kinds.
            for d in &detected {
                assert_eq!(d.fault, fault, "spurious {d} while injecting {fault}");
            }
        }
    }

    #[test]
    fn unknown_frames_are_ignored() {
        let mut wrapped: Vec<Option<PoseClass>> = poses_of(&JumpScript::standard())
            .into_iter()
            .map(Some)
            .collect();
        // Blank out every third frame.
        for (i, slot) in wrapped.iter_mut().enumerate() {
            if i % 3 == 0 {
                *slot = None;
            }
        }
        let faults = assess_pose_sequence(&wrapped);
        assert!(
            faults.is_empty(),
            "a correct jump with unknowns should still pass: {faults:?}"
        );
    }

    #[test]
    fn single_glitch_frame_does_not_satisfy_a_rule() {
        // A jump with no tuck except one (likely misclassified) frame.
        let mut poses = poses_of(&JumpFault::NoTuck.apply(&JumpScript::standard()));
        let air_idx = poses
            .iter()
            .position(|p| p.stage() == JumpStage::InAir)
            .unwrap();
        poses[air_idx] = PoseClass::AirborneTuck;
        let faults = assess_known_sequence(&poses);
        assert!(
            faults.iter().any(|d| d.fault == JumpFault::NoTuck),
            "one glitch frame must not count as a tuck"
        );
    }

    #[test]
    fn empty_sequence_reports_missing_movements() {
        let faults = assess_pose_sequence(&[]);
        // Everything required is missing; overbalance is not reported.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().all(|d| d.fault != JumpFault::Overbalance));
    }

    #[test]
    fn display_contains_stage_and_advice() {
        let faults = assess_pose_sequence(&[]);
        let s = faults[0].to_string();
        assert!(s.contains("before jumping"));
        assert!(s.contains("swing"));
    }

    #[test]
    fn interpreter_matches_legacy_on_every_injected_fault() {
        let taxonomy = slj_sim::default_taxonomy();
        let mut scripts = vec![JumpScript::standard(), JumpScript::with_rare_poses()];
        scripts.extend(
            JumpFault::ALL
                .iter()
                .map(|f| f.apply(&JumpScript::standard())),
        );
        for script in &scripts {
            let poses = poses_of(script);
            let wrapped: Vec<Option<PoseClass>> = poses.iter().copied().map(Some).collect();
            let legacy = assess_pose_sequence(&wrapped);
            let indices: Vec<Option<usize>> = poses.iter().map(|p| Some(p.index())).collect();
            let interpreted = assess_with_taxonomy(&taxonomy, &indices);
            assert_eq!(legacy.len(), interpreted.len());
            for (l, i) in legacy.iter().zip(&interpreted) {
                assert_eq!(i.ident, format!("{:?}", l.fault));
                assert_eq!(i.display, l.fault.to_string());
                assert_eq!(i.stage_ident, format!("{:?}", l.stage));
                assert_eq!(i.stage_display, l.stage.to_string());
                assert_eq!(i.advice, l.advice);
                // The rendered report lines are identical too.
                assert_eq!(i.to_string(), l.to_string());
            }
        }
    }

    #[test]
    fn empty_sequence_via_interpreter() {
        let taxonomy = slj_sim::default_taxonomy();
        let faults = assess_with_taxonomy(&taxonomy, &[]);
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().all(|d| d.ident != "Overbalance"));
    }

    #[test]
    fn all_unknown_sequence_matches_empty() {
        let unknowns = vec![None; 40];
        assert_eq!(assess_pose_sequence(&unknowns), assess_pose_sequence(&[]));
        let taxonomy = slj_sim::default_taxonomy();
        assert_eq!(
            assess_with_taxonomy(&taxonomy, &vec![None; 40]),
            assess_with_taxonomy(&taxonomy, &[])
        );
    }

    #[test]
    fn fault_evidence_at_stage_boundary_still_counts() {
        // Evidence frames for a rule count wherever they appear in the
        // sequence — the interpreter tallies poses, not stage spans. Put
        // the two tuck frames at the very edges of the in-air stretch
        // (the boundary frames next to jumping and landing) and the
        // NoTuck rule must stay satisfied.
        let mut poses = poses_of(&JumpFault::NoTuck.apply(&JumpScript::standard()));
        let first_air = poses
            .iter()
            .position(|p| p.stage() == JumpStage::InAir)
            .unwrap();
        let last_air = poses.len()
            - 1
            - poses
                .iter()
                .rev()
                .position(|p| p.stage() == JumpStage::InAir)
                .unwrap();
        assert!(last_air > first_air);
        poses[first_air] = PoseClass::AirborneTuck;
        poses[last_air] = PoseClass::AirborneTuck;
        let faults = assess_known_sequence(&poses);
        assert!(
            faults.iter().all(|d| d.fault != JumpFault::NoTuck),
            "two boundary tuck frames satisfy the rule: {faults:?}"
        );
    }
}
