//! Saving and loading trained models.
//!
//! A [`PoseModel`] is persisted as a small versioned plain-text format
//! (no external serialisation crates): the configuration scalars, the
//! embedded taxonomy artifact, then each learned table as
//! whitespace-separated rows. The format is line-oriented and
//! diff-friendly, so trained models can be versioned next to the code.
//! Files written before the taxonomy block existed still load — they
//! get the default standing-long-jump taxonomy.

use crate::config::{ObservationMode, PipelineConfig, TemporalMode};
use crate::error::SljError;
use crate::model::{LearnedTables, PoseModel};
use slj_imaging::background::ExtractionConfig;
use slj_skeleton::pipeline::SkeletonConfig;
use slj_skeleton::thinning::ThinningAlgorithm;
use slj_taxonomy::Taxonomy;
use std::fmt::Write as _;
use std::path::Path;

/// Magic first line of the model format.
const MAGIC: &str = "slj-pose-model v1";

/// Serialises a trained model to the versioned text format.
pub fn to_string(model: &PoseModel) -> String {
    let c = model.config();
    let t = model.tables();
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(
        out,
        "config window={} th_object={} auto_threshold={} median={} min_branch={} cut_loops={} prune={} algorithm={} partitions={} th_pose={} alpha={} activation={} leak={} temporal={} observation={} hard_commit={} carry_forward={}",
        c.extraction.window,
        c.extraction.th_object,
        c.extraction.auto_threshold,
        c.median_window,
        c.skeleton.min_branch_len,
        c.skeleton.cut_loops,
        c.skeleton.prune,
        match c.skeleton.algorithm {
            ThinningAlgorithm::ZhangSuen => "zhang-suen",
            ThinningAlgorithm::GuoHall => "guo-hall",
        },
        c.partitions,
        c.th_pose,
        c.laplace_alpha,
        c.part_activation,
        c.area_leak,
        match c.temporal {
            TemporalMode::Static => "static",
            TemporalMode::PrevPose => "prev-pose",
            TemporalMode::Full => "full",
        },
        match c.observation {
            ObservationMode::PartAssignment => "parts",
            ObservationMode::AreaOccupancy => "areas",
        },
        c.hard_commit,
        c.carry_forward,
    );
    // The taxonomy artifact, embedded verbatim so a model file is
    // self-describing (pose/stage vocabulary, fault rules and all).
    let artifact = model.taxonomy().to_artifact_string();
    let artifact_lines: Vec<&str> = artifact.lines().collect();
    let _ = writeln!(out, "taxonomy lines={}", artifact_lines.len());
    for line in &artifact_lines {
        let _ = writeln!(out, "{line}");
    }
    let write_rows = |out: &mut String, name: &str, rows: Vec<&[f64]>| {
        let cols = rows.first().map_or(0, |r| r.len());
        let _ = writeln!(out, "table {name} rows={} cols={cols}", rows.len());
        for row in rows {
            // `{:e}` prints the shortest scientific form that round-trips
            // exactly back to the same f64.
            let line: Vec<String> = row.iter().map(|v| format!("{v:e}")).collect();
            let _ = writeln!(out, "{}", line.join(" "));
        }
    };
    write_rows(
        &mut out,
        "stage_transition",
        t.stage_transition.iter().map(|r| r.as_slice()).collect(),
    );
    // pose_transition[prev][stage] flattened to (prev * S + stage) rows.
    write_rows(
        &mut out,
        "pose_transition",
        t.pose_transition
            .iter()
            .flat_map(|per_prev| per_prev.iter().map(|r| r.as_slice()))
            .collect(),
    );
    write_rows(
        &mut out,
        "pose_transition_nostage",
        t.pose_transition_nostage
            .iter()
            .map(|r| r.as_slice())
            .collect(),
    );
    write_rows(&mut out, "pose_marginal", vec![t.pose_marginal.as_slice()]);
    write_rows(
        &mut out,
        "part_given_pose",
        t.part_given_pose
            .iter()
            .flat_map(|per_part| per_part.iter().map(|r| r.as_slice()))
            .collect(),
    );
    out
}

/// Parses a model from the text format.
///
/// # Errors
///
/// Returns [`SljError::ConfigMismatch`] on any malformed content and
/// propagates model-assembly validation.
pub fn from_str(text: &str) -> Result<PoseModel, SljError> {
    let bad = |msg: &str| SljError::ConfigMismatch(format!("model parse: {msg}"));
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(MAGIC) {
        return Err(bad("missing magic header"));
    }
    // Config line.
    let config_line = lines.next().ok_or_else(|| bad("missing config line"))?;
    let mut kv = std::collections::HashMap::new();
    for token in config_line.split_whitespace().skip(1) {
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| bad(&format!("bad config token {token:?}")))?;
        kv.insert(k.to_string(), v.to_string());
    }
    fn get<T: std::str::FromStr>(
        kv: &std::collections::HashMap<String, String>,
        key: &str,
    ) -> Result<T, SljError> {
        kv.get(key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| SljError::ConfigMismatch(format!("model parse: bad or missing {key}")))
    }
    let config = PipelineConfig {
        extraction: ExtractionConfig {
            window: get(&kv, "window")?,
            th_object: get(&kv, "th_object")?,
            auto_threshold: get(&kv, "auto_threshold")?,
        },
        median_window: get(&kv, "median")?,
        skeleton: SkeletonConfig {
            algorithm: match kv.get("algorithm").map(String::as_str) {
                Some("zhang-suen") => ThinningAlgorithm::ZhangSuen,
                Some("guo-hall") => ThinningAlgorithm::GuoHall,
                other => return Err(bad(&format!("unknown algorithm {other:?}"))),
            },
            min_branch_len: get(&kv, "min_branch")?,
            cut_loops: get(&kv, "cut_loops")?,
            prune: get(&kv, "prune")?,
        },
        partitions: get(&kv, "partitions")?,
        th_pose: get(&kv, "th_pose")?,
        laplace_alpha: get(&kv, "alpha")?,
        part_activation: get(&kv, "activation")?,
        area_leak: get(&kv, "leak")?,
        temporal: match kv.get("temporal").map(String::as_str) {
            Some("static") => TemporalMode::Static,
            Some("prev-pose") => TemporalMode::PrevPose,
            Some("full") => TemporalMode::Full,
            other => return Err(bad(&format!("unknown temporal mode {other:?}"))),
        },
        observation: match kv.get("observation").map(String::as_str) {
            Some("parts") => ObservationMode::PartAssignment,
            Some("areas") => ObservationMode::AreaOccupancy,
            other => return Err(bad(&format!("unknown observation mode {other:?}"))),
        },
        hard_commit: get(&kv, "hard_commit")?,
        carry_forward: get(&kv, "carry_forward")?,
    };

    // Optional embedded taxonomy block (absent in legacy files, which
    // predate data-driven taxonomies and always meant the default).
    let mut lines = lines.peekable();
    let taxonomy = match lines.peek() {
        Some(line) if line.trim().starts_with("taxonomy ") => {
            let header = lines.next().unwrap_or_default();
            let count: usize = header
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.strip_prefix("lines="))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad(&format!("bad taxonomy header {header:?}")))?;
            let mut artifact = String::new();
            for _ in 0..count {
                let line = lines
                    .next()
                    .ok_or_else(|| bad("truncated taxonomy block"))?;
                artifact.push_str(line);
                artifact.push('\n');
            }
            Taxonomy::from_artifact_str(&artifact)
                .map_err(|e| bad(&format!("embedded taxonomy: {e}")))?
        }
        _ => slj_sim::taxonomy::default_taxonomy(),
    };

    // Tables.
    let mut read_table = |name: &str| -> Result<Vec<Vec<f64>>, SljError> {
        let header = lines
            .next()
            .ok_or_else(|| bad(&format!("missing table {name}")))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("table") || parts.next() != Some(name) {
            return Err(bad(&format!("expected table {name}, got {header:?}")));
        }
        let parse_dim = |tok: Option<&str>, what: &str| -> Result<usize, SljError> {
            tok.and_then(|t| t.split_once('='))
                .and_then(|(_, v)| v.parse().ok())
                .ok_or_else(|| {
                    SljError::ConfigMismatch(format!("model parse: bad {what} in {header:?}"))
                })
        };
        let rows = parse_dim(parts.next(), "rows")?;
        let cols = parse_dim(parts.next(), "cols")?;
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let line = lines
                .next()
                .ok_or_else(|| bad(&format!("truncated table {name}")))?;
            let row: Vec<f64> = line
                .split_whitespace()
                .map(|v| v.parse().map_err(|_| bad(&format!("bad value in {name}"))))
                .collect::<Result<_, _>>()?;
            if row.len() != cols {
                return Err(bad(&format!(
                    "table {name}: row has {} cols, expected {cols}",
                    row.len()
                )));
            }
            out.push(row);
        }
        Ok(out)
    };

    let p = taxonomy.pose_count();
    let s = taxonomy.stage_count();
    let stage_transition = read_table("stage_transition")?;
    let pose_flat = read_table("pose_transition")?;
    if pose_flat.len() != p * s {
        return Err(bad("pose_transition has wrong row count"));
    }
    let pose_transition: Vec<Vec<Vec<f64>>> =
        pose_flat.chunks(s).map(|chunk| chunk.to_vec()).collect();
    let pose_transition_nostage = read_table("pose_transition_nostage")?;
    let pose_marginal = read_table("pose_marginal")?
        .into_iter()
        .next()
        .ok_or_else(|| bad("empty pose_marginal"))?;
    let part_flat = read_table("part_given_pose")?;
    if part_flat.len() != taxonomy.parts() * p {
        return Err(bad("part_given_pose has wrong row count"));
    }
    let part_given_pose: Vec<Vec<Vec<f64>>> =
        part_flat.chunks(p).map(|chunk| chunk.to_vec()).collect();

    PoseModel::from_tables_with(
        config,
        taxonomy,
        LearnedTables {
            stage_transition,
            pose_transition,
            pose_transition_nostage,
            pose_marginal,
            part_given_pose,
        },
    )
}

/// Writes a model to `path`.
///
/// # Errors
///
/// Propagates filesystem errors as [`SljError::Imaging`] (I/O).
pub fn save(model: &PoseModel, path: impl AsRef<Path>) -> Result<(), SljError> {
    std::fs::write(path, to_string(model))
        .map_err(|e| SljError::Imaging(slj_imaging::ImagingError::Io(e.to_string())))
}

/// Reads a model from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and parse failures.
pub fn load(path: impl AsRef<Path>) -> Result<PoseModel, SljError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SljError::Imaging(slj_imaging::ImagingError::Io(e.to_string())))?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Trainer;
    use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

    fn trained_model() -> PoseModel {
        let sim = JumpSimulator::new(71);
        let clips: Vec<_> = (0..2)
            .map(|i| {
                sim.generate_clip(&ClipSpec {
                    total_frames: 28,
                    seed: i,
                    noise: NoiseConfig::default(),
                    rare_poses: i == 1,
                    ..ClipSpec::default()
                })
            })
            .collect();
        Trainer::new(PipelineConfig::default())
            .unwrap()
            .train(&clips)
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = trained_model();
        let text = to_string(&model);
        let back = from_str(&text).unwrap();
        assert_eq!(back.config(), model.config());
        assert_eq!(back.tables(), model.tables());
    }

    #[test]
    fn round_trip_through_file() {
        let model = trained_model();
        let path = std::env::temp_dir().join("slj_model_io_test.model");
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.tables(), model.tables());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reloaded_model_classifies_identically() {
        use crate::evaluation::evaluate_clip;
        let model = trained_model();
        let back = from_str(&to_string(&model)).unwrap();
        let clip = JumpSimulator::new(71).generate_clip(&ClipSpec {
            total_frames: 28,
            seed: 9,
            noise: NoiseConfig::default(),
            ..ClipSpec::default()
        });
        let a = evaluate_clip(&model, &clip).unwrap();
        let b = evaluate_clip(&back, &clip).unwrap();
        for (x, y) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!(x.pose, y.pose);
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str("").is_err());
        assert!(from_str("wrong magic\n").is_err());
        let model = trained_model();
        let text = to_string(&model);
        // Truncated file.
        let half = &text[..text.len() / 2];
        assert!(from_str(half).is_err());
        // Corrupted config.
        let bad = text.replace("partitions=8", "partitions=zero");
        assert!(from_str(&bad).is_err());
        // Corrupted table value.
        let bad2 = text.replacen(
            "table stage_transition rows=4",
            "table stage_transition rows=9",
            1,
        );
        assert!(from_str(&bad2).is_err());
    }
}
