//! Property-based tests of the jump simulator.

use proptest::prelude::*;
use rand::SeedableRng;
use slj_sim::body::BodyModel;
use slj_sim::faults::JumpFault;
use slj_sim::kinematics::{solve, JointAngles};
use slj_sim::pose::PoseClass;
use slj_sim::script::{choreograph, JumpScript, SceneParams};
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn angles_strategy() -> impl Strategy<Value = JointAngles> {
    (
        -0.8f64..1.2,
        -1.5f64..3.0,
        -0.3f64..1.2,
        -0.5f64..1.8,
        -0.2f64..2.2,
        -0.5f64..1.8,
        -0.2f64..2.2,
    )
        .prop_map(
            |(torso_lean, shoulder, elbow, hip_front, knee_front, hip_back, knee_back)| {
                JointAngles {
                    torso_lean,
                    shoulder,
                    elbow,
                    hip_front,
                    knee_front,
                    hip_back,
                    knee_back,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward kinematics preserves every segment length, for any joint
    /// configuration.
    #[test]
    fn kinematics_preserves_lengths(angles in angles_strategy(), hx in 0.0f64..200.0, hy in 0.0f64..200.0) {
        let b = BodyModel::default();
        let s = solve(&b, (hx, hy), &angles);
        let d = |a: (f64, f64), c: (f64, f64)| ((a.0 - c.0).powi(2) + (a.1 - c.1).powi(2)).sqrt();
        prop_assert!((d(s.hip, s.neck) - b.torso).abs() < 1e-9);
        prop_assert!((d(s.neck, s.elbow) - b.upper_arm).abs() < 1e-9);
        prop_assert!((d(s.elbow, s.hand) - b.forearm).abs() < 1e-9);
        prop_assert!((d(s.hip, s.knee_front) - b.thigh).abs() < 1e-9);
        prop_assert!((d(s.knee_front, s.foot_front) - b.shin).abs() < 1e-9);
        prop_assert!((d(s.hip, s.knee_back) - b.thigh).abs() < 1e-9);
        prop_assert!((d(s.knee_back, s.foot_back) - b.shin).abs() < 1e-9);
    }

    /// Scripts reshape to any feasible frame count exactly, preserving
    /// pose order.
    #[test]
    fn scripts_reshape_exactly(total in 22usize..80, rare in proptest::bool::ANY) {
        let base = if rare { JumpScript::with_rare_poses() } else { JumpScript::standard() };
        prop_assume!(total >= base.segments().len());
        let s = base.with_total_frames(total);
        prop_assert_eq!(s.total_frames(), total);
        let mut prev = 0usize;
        for seg in s.segments() {
            prop_assert!(seg.pose.stage().index() >= prev);
            prev = seg.pose.stage().index();
        }
    }

    /// Choreography keeps ground-contact feet on the ground line and
    /// everything inside the frame.
    #[test]
    fn choreography_respects_scene(seed in 0u64..10_000, total in 25usize..60) {
        let scene = SceneParams::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let script = JumpScript::standard().with_total_frames(total);
        let frames = choreograph(&script, &BodyModel::default(), &scene, 0.05, &mut rng);
        prop_assert_eq!(frames.len(), total);
        for f in &frames {
            if !f.pose.is_airborne() {
                let foot_y = f.skeleton.foot_front.1.max(f.skeleton.foot_back.1);
                prop_assert!((foot_y - scene.ground_y).abs() < 1.0);
            }
            for p in [f.skeleton.head, f.skeleton.hand, f.skeleton.foot_front, f.skeleton.foot_back] {
                prop_assert!(p.0 > 0.0 && p.0 < scene.width as f64);
                prop_assert!(p.1 > 0.0 && p.1 < scene.height as f64);
            }
        }
    }

    /// Any fault transformation preserves clip length and detects as a
    /// stage-monotone script.
    #[test]
    fn faults_preserve_script_shape(fault_idx in 0usize..5, total in 25usize..60) {
        let fault = JumpFault::ALL[fault_idx];
        let script = JumpScript::standard().with_total_frames(total);
        let bad = fault.apply(&script);
        prop_assert_eq!(bad.total_frames(), total);
        let mut prev = 0usize;
        for p in bad.frame_poses() {
            prop_assert!(p.stage().index() >= prev);
            prev = p.stage().index();
        }
    }

    /// Generated clips are internally consistent for any seed.
    #[test]
    fn clips_are_consistent(seed in 0u64..10_000) {
        let sim = JumpSimulator::new(999);
        let clip = sim.generate_clip(&ClipSpec {
            total_frames: 30,
            seed,
            noise: NoiseConfig::default(),
            ..ClipSpec::default()
        });
        prop_assert_eq!(clip.frames.len(), 30);
        prop_assert_eq!(clip.truth.len(), 30);
        for t in &clip.truth {
            prop_assert_eq!(t.pose.stage(), t.stage);
            prop_assert!(!t.silhouette.is_empty());
        }
        // Frames have the jumper brighter than the background on the
        // silhouette.
        let mid = &clip.frames[15];
        let truth = &clip.truth[15];
        let (mut on, mut n) = (0u64, 0u64);
        for (x, y) in truth.silhouette.iter_ones() {
            on += mid.get(x, y).luma() as u64;
            n += 1;
        }
        prop_assert!(on / n > 60, "jumper too dark: {}", on / n);
    }

    /// Canonical poses solve to skeletons whose lowest point is a foot
    /// or (for deep tucks) near the body's bottom — never the head.
    #[test]
    fn head_is_never_the_lowest_point(pose_idx in 0usize..22) {
        let pose = PoseClass::from_index(pose_idx);
        let s = solve(&BodyModel::default(), (80.0, 60.0), &pose.canonical_angles());
        let low = s.lowest_point();
        prop_assert!(low.1 > s.head.1, "{pose}: head at the bottom");
    }
}
