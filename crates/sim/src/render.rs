//! Rasterisation of the jumper into silhouettes and RGB video frames.

use crate::body::BodyModel;
use crate::kinematics::Skeleton2D;
use crate::noise::NoiseConfig;
use rand::Rng;
use slj_imaging::binary::BinaryImage;
use slj_imaging::draw;
use slj_imaging::image::RgbImage;
use slj_imaging::pixel::Rgb;

/// Renders skeletons into silhouette masks and noisy studio-style RGB
/// frames (dark background, brightly lit jumper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Renderer {
    width: usize,
    height: usize,
    /// Background base colour (the paper shoots against black).
    pub background_color: Rgb,
    /// Jumper base colour.
    pub jumper_color: Rgb,
}

impl Renderer {
    /// Creates a renderer for `width × height` frames with studio
    /// defaults.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Renderer {
            width,
            height,
            background_color: Rgb::new(12, 12, 16),
            jumper_color: Rgb::new(170, 150, 130),
        }
    }

    /// Frame dimensions `(width, height)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Rasterises the clean silhouette of a skeleton: head disk, torso
    /// capsule, one arm and two legs.
    pub fn silhouette(&self, body: &BodyModel, s: &Skeleton2D) -> BinaryImage {
        let mut mask = BinaryImage::new(self.width, self.height);
        let cap = |m: &mut BinaryImage, a: (f64, f64), b: (f64, f64), r: f64| {
            draw::fill_capsule(m, a.0, a.1, b.0, b.1, r);
        };
        // Torso, neck and head.
        cap(&mut mask, s.hip, s.neck, body.torso_thickness);
        cap(&mut mask, s.neck, s.head, body.limb_thickness);
        draw::fill_disk(&mut mask, s.head.0, s.head.1, body.head_radius);
        // Arm (single, side view: both arms overlap).
        cap(&mut mask, s.neck, s.elbow, body.limb_thickness);
        cap(&mut mask, s.elbow, s.hand, body.limb_thickness);
        // Legs.
        cap(&mut mask, s.hip, s.knee_front, body.limb_thickness + 0.5);
        cap(&mut mask, s.knee_front, s.foot_front, body.limb_thickness);
        cap(&mut mask, s.hip, s.knee_back, body.limb_thickness + 0.5);
        cap(&mut mask, s.knee_back, s.foot_back, body.limb_thickness);
        mask
    }

    /// Applies edge bites and interior holes to a silhouette (the
    /// degraded version painted into the video frame) — the "small holes
    /// and ridged edges" of the paper's Figure 1(b).
    ///
    /// Defects are small disks rather than single pixels, so they
    /// survive the extractor's moving-window average and genuinely need
    /// the median-filter repair step.
    pub fn corrupt_silhouette<R: Rng>(
        &self,
        clean: &BinaryImage,
        noise: &NoiseConfig,
        rng: &mut R,
    ) -> BinaryImage {
        let mut out = clean.clone();
        if noise.edge_dropout_prob <= 0.0 && noise.hole_prob <= 0.0 {
            return out;
        }
        let clear_disk = |out: &mut BinaryImage, cx: usize, cy: usize, r2: f64| {
            let r = r2.sqrt().ceil() as isize;
            for dy in -r..=r {
                for dx in -r..=r {
                    if (dx * dx + dy * dy) as f64 <= r2 {
                        let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                        if out.in_bounds(nx, ny) {
                            out.set(nx as usize, ny as usize, false);
                        }
                    }
                }
            }
        };
        for (x, y) in clean.iter_ones() {
            let boundary = clean.neighbor_count8(x, y) < 8;
            if boundary {
                // Ragged edges: single-pixel nicks, plus occasional
                // deeper bites.
                if noise.edge_dropout_prob > 0.0 && rng.gen::<f64>() < noise.edge_dropout_prob {
                    out.set(x, y, false);
                }
                if noise.edge_dropout_prob > 0.0
                    && rng.gen::<f64>() < noise.edge_dropout_prob / 20.0
                {
                    clear_disk(&mut out, x, y, 2.0);
                }
            } else if noise.hole_prob > 0.0 && rng.gen::<f64>() < noise.hole_prob / 3.0 {
                // Small interior holes, a few pixels across.
                clear_disk(&mut out, x, y, 2.0);
            }
        }
        out
    }

    /// Generates the static studio background with mild deterministic
    /// texture.
    pub fn background<R: Rng>(&self, rng: &mut R) -> RgbImage {
        let base = self.background_color;
        RgbImage::from_fn(self.width, self.height, |_, _| {
            let dv = rng.gen_range(0..5) as u8;
            Rgb::new(
                base.r.saturating_add(dv),
                base.g.saturating_add(dv),
                base.b.saturating_add(dv),
            )
        })
    }

    /// Composites a (possibly corrupted) silhouette over the background
    /// with lighting jitter and sensor speckle.
    pub fn frame<R: Rng>(
        &self,
        background: &RgbImage,
        silhouette: &BinaryImage,
        noise: &NoiseConfig,
        rng: &mut R,
    ) -> RgbImage {
        assert_eq!(
            background.dimensions(),
            silhouette.dimensions(),
            "background and silhouette dimensions must match"
        );
        let lighting: i16 = if noise.lighting_jitter > 0 {
            rng.gen_range(-(noise.lighting_jitter as i16)..=noise.lighting_jitter as i16)
        } else {
            0
        };
        let shift = |v: u8| -> u8 { (v as i16 + lighting).clamp(0, 255) as u8 };
        let mut frame = background.map(|p| Rgb::new(shift(p.r), shift(p.g), shift(p.b)));
        // Paint the jumper with per-pixel shading variation.
        for (x, y) in silhouette.iter_ones() {
            let shade = rng.gen_range(-12i16..=12);
            let tint = |v: u8| -> u8 { (v as i16 + shade + lighting).clamp(0, 255) as u8 };
            frame.set(
                x,
                y,
                Rgb::new(
                    tint(self.jumper_color.r),
                    tint(self.jumper_color.g),
                    tint(self.jumper_color.b),
                ),
            );
        }
        // Sensor speckle: mostly single pixels, occasionally a bright
        // 2x2 blob (hot region) that survives the extractor's moving
        // window — the source of the stray foreground fragments the
        // median filter removes (Figure 1(b) -> 1(c)).
        if noise.speckle_prob > 0.0 {
            let total = self.width * self.height;
            let expected = (total as f64 * noise.speckle_prob).ceil() as usize;
            for _ in 0..expected {
                let x = rng.gen_range(0..self.width);
                let y = rng.gen_range(0..self.height);
                if rng.gen::<f64>() < 0.3 {
                    let v = rng.gen_range(190..255) as u8;
                    for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                        let (nx, ny) = (x + dx, y + dy);
                        if nx < self.width && ny < self.height {
                            frame.set(nx, ny, Rgb::gray(v));
                        }
                    }
                } else {
                    let v = rng.gen_range(40..120) as u8;
                    frame.set(x, y, Rgb::gray(v));
                }
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinematics::solve;
    use crate::pose::PoseClass;
    use rand::SeedableRng;

    fn skeleton() -> Skeleton2D {
        solve(
            &BodyModel::default(),
            (80.0, 60.0),
            &PoseClass::StandingHandsSwungForward.canonical_angles(),
        )
    }

    #[test]
    fn silhouette_is_one_connected_blob() {
        use slj_imaging::morphology::Connectivity;
        use slj_imaging::region::connected_components;
        let r = Renderer::new(160, 120);
        for &pose in &PoseClass::ALL {
            let s = solve(
                &BodyModel::default(),
                (80.0, 60.0),
                &pose.canonical_angles(),
            );
            let mask = r.silhouette(&BodyModel::default(), &s);
            let comps = connected_components(&mask, Connectivity::Eight);
            assert_eq!(comps.len(), 1, "{pose}: silhouette must be one blob");
            assert!(mask.count_ones() > 300, "{pose}: body too small");
        }
    }

    #[test]
    fn silhouette_covers_key_joints() {
        let r = Renderer::new(160, 120);
        let s = skeleton();
        let mask = r.silhouette(&BodyModel::default(), &s);
        for p in [s.head, s.hip, s.knee_front, s.hand] {
            assert!(
                mask.get(p.0.round() as usize, p.1.round() as usize),
                "joint {p:?} not covered"
            );
        }
    }

    #[test]
    fn corrupt_preserves_mass_within_reason() {
        let r = Renderer::new(160, 120);
        let mask = r.silhouette(&BodyModel::default(), &skeleton());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let corrupted = r.corrupt_silhouette(&mask, &NoiseConfig::default(), &mut rng);
        let kept = corrupted.count_ones() as f64 / mask.count_ones() as f64;
        assert!(kept > 0.75, "kept fraction {kept}");
        assert!(kept < 1.0, "corruption must remove something");
        // Corrupted is a subset.
        assert_eq!(corrupted.and(&mask).unwrap(), corrupted);
    }

    #[test]
    fn corrupt_with_clean_config_is_identity() {
        let r = Renderer::new(160, 120);
        let mask = r.silhouette(&BodyModel::default(), &skeleton());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(
            r.corrupt_silhouette(&mask, &NoiseConfig::clean(), &mut rng),
            mask
        );
    }

    #[test]
    fn frame_contrast_between_jumper_and_background() {
        let r = Renderer::new(160, 120);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bg = r.background(&mut rng);
        let mask = r.silhouette(&BodyModel::default(), &skeleton());
        let frame = r.frame(&bg, &mask, &NoiseConfig::default(), &mut rng);
        // Average brightness on the jumper far exceeds the background.
        let (mut on, mut on_n, mut off, mut off_n) = (0u64, 0u64, 0u64, 0u64);
        for (x, y, p) in frame.enumerate_pixels() {
            if mask.get(x, y) {
                on += p.luma() as u64;
                on_n += 1;
            } else {
                off += p.luma() as u64;
                off_n += 1;
            }
        }
        let on_avg = on / on_n;
        let off_avg = off / off_n;
        assert!(
            on_avg > off_avg + 80,
            "jumper {on_avg} vs background {off_avg}"
        );
    }

    #[test]
    fn speckle_noise_appears_on_the_background() {
        let r = Renderer::new(160, 120);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let bg = r.background(&mut rng);
        let mask = BinaryImage::new(160, 120); // no jumper at all
        let noisy = r.frame(
            &bg,
            &mask,
            &NoiseConfig {
                speckle_prob: 0.002,
                lighting_jitter: 0,
                ..NoiseConfig::clean()
            },
            &mut rng,
        );
        // Speckles are bright against the dark background.
        let bright = noisy.iter().filter(|p| p.luma() > 35).count();
        assert!(bright >= 10, "expected speckles, found {bright}");
        // And some are the 2x2 hot blobs (adjacent bright pairs).
        let mut paired = 0;
        for y in 0..119 {
            for x in 0..159 {
                if noisy.get(x, y).luma() > 150 && noisy.get(x + 1, y).luma() > 150 {
                    paired += 1;
                }
            }
        }
        assert!(paired > 0, "expected at least one 2x2 hot blob");
    }

    #[test]
    fn clean_noise_leaves_background_untouched() {
        let r = Renderer::new(64, 64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bg = r.background(&mut rng);
        let mask = BinaryImage::new(64, 64);
        let frame = r.frame(&bg, &mask, &NoiseConfig::clean(), &mut rng);
        assert_eq!(frame, bg);
    }

    #[test]
    fn background_is_dark() {
        let r = Renderer::new(64, 64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bg = r.background(&mut rng);
        assert!(bg.iter().all(|p| p.luma() < 30));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn frame_rejects_mismatched_dimensions() {
        let r = Renderer::new(64, 64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let bg = r.background(&mut rng);
        let mask = BinaryImage::new(32, 32);
        r.frame(&bg, &mask, &NoiseConfig::default(), &mut rng);
    }
}
