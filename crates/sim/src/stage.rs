//! The four stages of a standing long jump (Section 4 of the paper).

use std::fmt;

/// The jumping-stage flag the paper feeds into its DBN: "there are four
/// stages in a jump. They are before jumping, jumping, in the air, and
/// landing."
///
/// The stage sequence is left-to-right: a jump can stay in a stage or
/// advance to the next one, never go back — which is exactly why the
/// paper uses it to rule out impossible pose transitions ("poses belonging
/// to 'before jumping' and poses belonging to 'landing' cannot occur
/// consecutively").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JumpStage {
    /// Standing, swinging arms, crouching.
    BeforeJumping,
    /// Take-off: extension of knees and ankles.
    Jumping,
    /// Flight.
    InAir,
    /// Touch-down and recovery.
    Landing,
}

impl JumpStage {
    /// All stages in temporal order.
    pub const ALL: [JumpStage; 4] = [
        JumpStage::BeforeJumping,
        JumpStage::Jumping,
        JumpStage::InAir,
        JumpStage::Landing,
    ];

    /// Number of stages.
    pub const COUNT: usize = 4;

    /// Stage index (0..4) in temporal order.
    pub fn index(self) -> usize {
        match self {
            JumpStage::BeforeJumping => 0,
            JumpStage::Jumping => 1,
            JumpStage::InAir => 2,
            JumpStage::Landing => 3,
        }
    }

    /// Stage from its index.
    ///
    /// # Panics
    ///
    /// Panics when `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The next stage, or `None` after landing.
    pub fn next(self) -> Option<JumpStage> {
        match self {
            JumpStage::BeforeJumping => Some(JumpStage::Jumping),
            JumpStage::Jumping => Some(JumpStage::InAir),
            JumpStage::InAir => Some(JumpStage::Landing),
            JumpStage::Landing => None,
        }
    }

    /// Whether `to` is a legal successor of `self` (stay or advance one).
    pub fn can_transition_to(self, to: JumpStage) -> bool {
        to == self || self.next() == Some(to)
    }
}

impl fmt::Display for JumpStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            JumpStage::BeforeJumping => "before jumping",
            JumpStage::Jumping => "jumping",
            JumpStage::InAir => "in the air",
            JumpStage::Landing => "landing",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, &s) in JumpStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(JumpStage::from_index(i), s);
        }
    }

    #[test]
    fn left_to_right_transitions() {
        assert!(JumpStage::BeforeJumping.can_transition_to(JumpStage::BeforeJumping));
        assert!(JumpStage::BeforeJumping.can_transition_to(JumpStage::Jumping));
        assert!(!JumpStage::BeforeJumping.can_transition_to(JumpStage::InAir));
        assert!(!JumpStage::BeforeJumping.can_transition_to(JumpStage::Landing));
        assert!(!JumpStage::Landing.can_transition_to(JumpStage::BeforeJumping));
        assert!(JumpStage::Landing.can_transition_to(JumpStage::Landing));
        assert_eq!(JumpStage::Landing.next(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(JumpStage::BeforeJumping.to_string(), "before jumping");
        assert_eq!(JumpStage::InAir.to_string(), "in the air");
    }
}
