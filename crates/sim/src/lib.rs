//! Synthetic standing-long-jump video generator.
//!
//! The paper's data — studio video of primary-school students jumping in
//! front of a black background — is not available, so this crate
//! substitutes an articulated 2-D jumper whose silhouette videos exercise
//! the identical pipeline code paths: background subtraction sees an RGB
//! frame with lighting jitter and sensor noise; thinning sees silhouettes
//! with limb junctions, loops where limbs touch the body, and boundary
//! noise; the classifier sees 22 labelled poses across the four jump
//! stages. Every frame carries ground truth (stage, pose, joint
//! positions, clean silhouette), which the paper's authors obtained by
//! hand labelling.
//!
//! - [`stage`] / [`pose`] — the four jump stages and the 22-pose taxonomy
//!   (including the four poses the paper names).
//! - [`body`] — jumper proportions (segment lengths, limb thickness).
//! - [`kinematics`] — forward kinematics from joint angles to 2-D joints.
//! - [`script`] — the frame-by-frame jump choreography and root
//!   trajectory (ballistic flight, ground-locked stance).
//! - [`render`] — silhouette and RGB-frame rasterisation with noise.
//! - [`faults`] — injects standards violations (no arm swing, no crouch,
//!   no tuck, stiff landing, overbalance) for the scoring experiments.
//! - [`dataset`] — clip and dataset generation matching the paper's
//!   12-clip/522-frame training and 3-clip/135-frame test sets.
//! - [`taxonomy`] — derives the shipped `slj-taxonomy` artifact (pose
//!   vocabulary, stage partition, fault rules) from these enums.
//!
//! # Examples
//!
//! ```
//! use slj_sim::{ClipSpec, JumpSimulator};
//!
//! let clip = JumpSimulator::new(7).generate_clip(&ClipSpec::default());
//! assert_eq!(clip.frames.len(), clip.truth.len());
//! assert!(clip.frames.len() >= 40, "a jump is roughly 40+ frames");
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod body;
pub mod dataset;
pub mod faults;
pub mod io;
pub mod kinematics;
pub mod noise;
pub mod pose;
pub mod render;
pub mod script;
pub mod stage;
pub mod taxonomy;

pub use body::BodyModel;
pub use dataset::{ClipSpec, Dataset, FrameTruth, JumpSimulator, LabeledClip};
pub use faults::JumpFault;
pub use noise::NoiseConfig;
pub use pose::PoseClass;
pub use stage::JumpStage;
pub use taxonomy::default_taxonomy;
