//! Injection of standards-violating movements.
//!
//! The whole point of the paper's system is to spot jumps that deviate
//! from the standing-long-jump standard ("incorrect movements at
//! different stages of the jump can thus be identified"). These fault
//! transformations rewrite a correct [`JumpScript`] into one exhibiting a
//! specific violation; the scoring experiments (E10) check the detector
//! finds exactly the injected faults.

use crate::pose::PoseClass;
use crate::script::{JumpScript, ScriptSegment};
use std::fmt;

/// A standards violation that can be injected into a jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JumpFault {
    /// The jumper never swings the arms back before take-off.
    NoArmSwing,
    /// The jumper never bends the knees before take-off (no crouch).
    NoCrouch,
    /// The jumper never tucks the knees mid-flight.
    NoTuck,
    /// The jumper lands with stiff knees (no absorption).
    StiffLanding,
    /// The jumper overbalances forward after landing.
    Overbalance,
}

impl JumpFault {
    /// All injectable faults.
    pub const ALL: [JumpFault; 5] = [
        JumpFault::NoArmSwing,
        JumpFault::NoCrouch,
        JumpFault::NoTuck,
        JumpFault::StiffLanding,
        JumpFault::Overbalance,
    ];

    /// Rewrites `script` to exhibit this fault, preserving total frame
    /// count and stage order.
    pub fn apply(self, script: &JumpScript) -> JumpScript {
        use PoseClass::*;
        let total = script.total_frames();
        let segments: Vec<ScriptSegment> = script
            .segments()
            .iter()
            .map(|seg| {
                let pose = match self {
                    JumpFault::NoArmSwing => match seg.pose {
                        StandingHandsSwungBack | StandingHandsSwungForward => StandingHandsOverlap,
                        WaistBentHandsBack => WaistBentHandsForward,
                        KneesBentHandsBack => KneesBentHandsForward,
                        p => p,
                    },
                    JumpFault::NoCrouch => match seg.pose {
                        KneesBentHandsBack => WaistBentHandsBack,
                        KneesBentHandsForward => WaistBentHandsForward,
                        p => p,
                    },
                    JumpFault::NoTuck => match seg.pose {
                        AirborneTuck => AirborneExtendedForward,
                        p => p,
                    },
                    JumpFault::StiffLanding => match seg.pose {
                        LandingAbsorb => LandingRecovery,
                        p => p,
                    },
                    JumpFault::Overbalance => match seg.pose {
                        LandingRecovery => LandingOverbalanced,
                        p => p,
                    },
                };
                ScriptSegment {
                    pose,
                    frames: seg.frames,
                }
            })
            .collect();
        // Merging identical neighbours keeps the script canonical.
        let mut merged: Vec<ScriptSegment> = Vec::new();
        for seg in segments {
            match merged.last_mut() {
                Some(last) if last.pose == seg.pose => last.frames += seg.frames,
                _ => merged.push(seg),
            }
        }
        let out = JumpScript::new(merged);
        debug_assert_eq!(out.total_frames(), total);
        out
    }
}

impl fmt::Display for JumpFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            JumpFault::NoArmSwing => "no backward arm swing before take-off",
            JumpFault::NoCrouch => "no knee bend before take-off",
            JumpFault::NoTuck => "no knee tuck in flight",
            JumpFault::StiffLanding => "stiff-kneed landing",
            JumpFault::Overbalance => "overbalanced landing",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_preserve_length_and_order() {
        let base = JumpScript::standard();
        for fault in JumpFault::ALL {
            let bad = fault.apply(&base);
            assert_eq!(bad.total_frames(), base.total_frames(), "{fault}");
            let mut prev = 0;
            for seg in bad.segments() {
                assert!(seg.pose.stage().index() >= prev, "{fault}");
                prev = seg.pose.stage().index();
            }
        }
    }

    #[test]
    fn no_arm_swing_removes_backward_poses() {
        let bad = JumpFault::NoArmSwing.apply(&JumpScript::standard());
        for p in bad.frame_poses() {
            assert!(
                !matches!(
                    p,
                    PoseClass::StandingHandsSwungBack
                        | PoseClass::KneesBentHandsBack
                        | PoseClass::WaistBentHandsBack
                ),
                "arm-swing pose {p} survived"
            );
        }
    }

    #[test]
    fn no_crouch_removes_knee_bends() {
        let bad = JumpFault::NoCrouch.apply(&JumpScript::standard());
        for p in bad.frame_poses() {
            assert!(
                !matches!(
                    p,
                    PoseClass::KneesBentHandsBack | PoseClass::KneesBentHandsForward
                ),
                "crouch pose {p} survived"
            );
        }
    }

    #[test]
    fn no_tuck_removes_tuck() {
        let bad = JumpFault::NoTuck.apply(&JumpScript::standard());
        assert!(!bad.frame_poses().contains(&PoseClass::AirborneTuck));
    }

    #[test]
    fn stiff_landing_removes_absorb() {
        let bad = JumpFault::StiffLanding.apply(&JumpScript::standard());
        assert!(!bad.frame_poses().contains(&PoseClass::LandingAbsorb));
    }

    #[test]
    fn overbalance_adds_overbalanced() {
        let bad = JumpFault::Overbalance.apply(&JumpScript::standard());
        assert!(bad.frame_poses().contains(&PoseClass::LandingOverbalanced));
    }

    #[test]
    fn correct_script_is_untouched_by_merging() {
        // Applying NoTuck to a script without a tuck is the identity.
        let no_tuck = JumpFault::NoTuck.apply(&JumpScript::standard());
        let twice = JumpFault::NoTuck.apply(&no_tuck);
        assert_eq!(no_tuck, twice);
    }

    #[test]
    fn display_names() {
        assert!(JumpFault::NoTuck.to_string().contains("tuck"));
        assert!(JumpFault::Overbalance.to_string().contains("overbalanced"));
    }
}
