//! The 22-pose taxonomy (Section 4: "There are totally 22 defined poses
//! in our work").
//!
//! The paper only names four of its poses in the text: "standing & hand
//! overlap with body", "standing & hand swung forward", "knee and foot
//! extended & hand raised forward" and "waist bended & hand raised
//! forward". This module fixes a complete, concrete 22-pose vocabulary
//! around them, partitioned over the four jump stages, and gives every
//! pose its canonical joint-angle configuration for the simulator.

use crate::kinematics::JointAngles;
use crate::stage::JumpStage;
use std::fmt;

/// One of the 22 defined poses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum PoseClass {
    // --- Before jumping (7) ---
    StandingHandsOverlap,
    StandingHandsSwungForward,
    StandingHandsSwungBack,
    KneesBentHandsBack,
    KneesBentHandsForward,
    WaistBentHandsBack,
    WaistBentHandsForward,
    // --- Jumping (4) ---
    TakeoffLeanForward,
    TakeoffLegsDriving,
    TakeoffExtendedHandsForward,
    TakeoffExtendedHandsUp,
    // --- In the air (6) ---
    AirborneArmsUp,
    AirborneTuck,
    AirborneArmsForward,
    AirborneExtendedForward,
    AirborneLegsForward,
    AirborneDescending,
    // --- Landing (5) ---
    LandingReach,
    LandingContact,
    LandingAbsorb,
    LandingRecovery,
    LandingOverbalanced,
}

impl PoseClass {
    /// All poses in canonical (stage-then-phase) order.
    pub const ALL: [PoseClass; 22] = [
        PoseClass::StandingHandsOverlap,
        PoseClass::StandingHandsSwungForward,
        PoseClass::StandingHandsSwungBack,
        PoseClass::KneesBentHandsBack,
        PoseClass::KneesBentHandsForward,
        PoseClass::WaistBentHandsBack,
        PoseClass::WaistBentHandsForward,
        PoseClass::TakeoffLeanForward,
        PoseClass::TakeoffLegsDriving,
        PoseClass::TakeoffExtendedHandsForward,
        PoseClass::TakeoffExtendedHandsUp,
        PoseClass::AirborneArmsUp,
        PoseClass::AirborneTuck,
        PoseClass::AirborneArmsForward,
        PoseClass::AirborneExtendedForward,
        PoseClass::AirborneLegsForward,
        PoseClass::AirborneDescending,
        PoseClass::LandingReach,
        PoseClass::LandingContact,
        PoseClass::LandingAbsorb,
        PoseClass::LandingRecovery,
        PoseClass::LandingOverbalanced,
    ];

    /// Number of defined poses (the paper's 22).
    pub const COUNT: usize = 22;

    /// Canonical index (0..22).
    pub fn index(self) -> usize {
        // Unit-only enum in declaration order: the discriminant IS the
        // canonical index (asserted by `indices_round_trip`).
        self as usize
    }

    /// Pose from its canonical index.
    ///
    /// # Panics
    ///
    /// Panics when `index >= 22`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The jump stage this pose belongs to.
    pub fn stage(self) -> JumpStage {
        use PoseClass::*;
        match self {
            StandingHandsOverlap
            | StandingHandsSwungForward
            | StandingHandsSwungBack
            | KneesBentHandsBack
            | KneesBentHandsForward
            | WaistBentHandsBack
            | WaistBentHandsForward => JumpStage::BeforeJumping,
            TakeoffLeanForward
            | TakeoffLegsDriving
            | TakeoffExtendedHandsForward
            | TakeoffExtendedHandsUp => JumpStage::Jumping,
            AirborneArmsUp
            | AirborneTuck
            | AirborneArmsForward
            | AirborneExtendedForward
            | AirborneLegsForward
            | AirborneDescending => JumpStage::InAir,
            LandingReach | LandingContact | LandingAbsorb | LandingRecovery
            | LandingOverbalanced => JumpStage::Landing,
        }
    }

    /// Poses belonging to `stage`, in canonical order.
    pub fn in_stage(stage: JumpStage) -> Vec<PoseClass> {
        Self::ALL
            .iter()
            .copied()
            .filter(|p| p.stage() == stage)
            .collect()
    }

    /// The pose every clip starts in — the paper's reset rule: "we reset
    /// the jumping stage to 'before jumping' and the current pose to
    /// 'standing & hand overlap with body'."
    pub fn initial() -> PoseClass {
        PoseClass::StandingHandsOverlap
    }

    /// The majority pose ("'Standing & hand swung forward' appears most
    /// of the time"), the only pose exempt from the `Th_Pose` threshold.
    pub fn majority() -> PoseClass {
        PoseClass::StandingHandsSwungForward
    }

    /// Canonical joint angles for the simulator (degrees internally,
    /// returned in radians).
    pub fn canonical_angles(self) -> JointAngles {
        use PoseClass::*;
        // (torso_lean, shoulder, elbow, hip_front, knee_front, hip_back, knee_back)
        let deg: (f64, f64, f64, f64, f64, f64, f64) = match self {
            StandingHandsOverlap => (2.0, 4.0, 4.0, 2.0, 4.0, -2.0, 3.0),
            StandingHandsSwungForward => (4.0, 62.0, 10.0, 2.0, 5.0, -2.0, 4.0),
            StandingHandsSwungBack => (8.0, -42.0, 6.0, 4.0, 8.0, 0.0, 6.0),
            KneesBentHandsBack => (22.0, -52.0, 8.0, 28.0, 52.0, 20.0, 44.0),
            KneesBentHandsForward => (22.0, 56.0, 10.0, 28.0, 52.0, 20.0, 44.0),
            WaistBentHandsBack => (46.0, -46.0, 8.0, 12.0, 18.0, 6.0, 14.0),
            WaistBentHandsForward => (46.0, 60.0, 8.0, 12.0, 18.0, 6.0, 14.0),
            TakeoffLeanForward => (32.0, 24.0, 10.0, 16.0, 32.0, 10.0, 26.0),
            TakeoffLegsDriving => (26.0, 82.0, 14.0, 58.0, 78.0, -8.0, 12.0),
            TakeoffExtendedHandsForward => (16.0, 92.0, 5.0, -10.0, 6.0, -14.0, 4.0),
            TakeoffExtendedHandsUp => (10.0, 148.0, 5.0, -10.0, 6.0, -14.0, 4.0),
            AirborneArmsUp => (6.0, 158.0, 6.0, 22.0, 32.0, 14.0, 26.0),
            AirborneTuck => (22.0, 72.0, 24.0, 92.0, 112.0, 80.0, 100.0),
            AirborneArmsForward => (12.0, 92.0, 10.0, 62.0, 72.0, 50.0, 62.0),
            AirborneExtendedForward => (2.0, 82.0, 6.0, 42.0, 20.0, 32.0, 16.0),
            AirborneLegsForward => (-8.0, 62.0, 8.0, 72.0, 18.0, 60.0, 14.0),
            AirborneDescending => (2.0, 42.0, 8.0, 52.0, 30.0, 42.0, 24.0),
            LandingReach => (12.0, 32.0, 10.0, 62.0, 16.0, 52.0, 12.0),
            LandingContact => (22.0, 22.0, 12.0, 52.0, 42.0, 44.0, 36.0),
            LandingAbsorb => (32.0, 44.0, 14.0, 72.0, 92.0, 62.0, 82.0),
            LandingRecovery => (10.0, 14.0, 8.0, 20.0, 26.0, 14.0, 20.0),
            LandingOverbalanced => (62.0, 72.0, 20.0, 42.0, 42.0, 32.0, 36.0),
        };
        JointAngles {
            torso_lean: deg.0.to_radians(),
            shoulder: deg.1.to_radians(),
            elbow: deg.2.to_radians(),
            hip_front: deg.3.to_radians(),
            knee_front: deg.4.to_radians(),
            hip_back: deg.5.to_radians(),
            knee_back: deg.6.to_radians(),
        }
    }

    /// Whether this pose is airborne (the feet leave the ground during
    /// takeoff extension, flight, and the landing reach).
    pub fn is_airborne(self) -> bool {
        use PoseClass::*;
        matches!(
            self,
            TakeoffExtendedHandsForward
                | TakeoffExtendedHandsUp
                | AirborneArmsUp
                | AirborneTuck
                | AirborneArmsForward
                | AirborneExtendedForward
                | AirborneLegsForward
                | AirborneDescending
                | LandingReach
        )
    }
}

impl fmt::Display for PoseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PoseClass::*;
        // The paper's naming style for the four poses it mentions, and
        // consistent phrasing for the rest.
        let name = match self {
            StandingHandsOverlap => "standing & hand overlap with body",
            StandingHandsSwungForward => "standing & hand swung forward",
            StandingHandsSwungBack => "standing & hand swung backward",
            KneesBentHandsBack => "knees bent & hand swung backward",
            KneesBentHandsForward => "knees bent & hand raised forward",
            WaistBentHandsBack => "waist bended & hand swung backward",
            WaistBentHandsForward => "waist bended & hand raised forward",
            TakeoffLeanForward => "takeoff & body leaning forward",
            TakeoffLegsDriving => "takeoff & legs driving",
            TakeoffExtendedHandsForward => "knee and foot extended & hand raised forward",
            TakeoffExtendedHandsUp => "knee and foot extended & hand raised up",
            AirborneArmsUp => "airborne & hand raised up",
            AirborneTuck => "airborne & knees tucked",
            AirborneArmsForward => "airborne & hand raised forward",
            AirborneExtendedForward => "airborne & body extended forward",
            AirborneLegsForward => "airborne & legs reaching forward",
            AirborneDescending => "airborne & descending",
            LandingReach => "landing & legs reaching",
            LandingContact => "landing & feet contact",
            LandingAbsorb => "landing & knees absorbing",
            LandingRecovery => "landing & standing up",
            LandingOverbalanced => "landing & overbalanced",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_twenty_two_poses() {
        assert_eq!(PoseClass::ALL.len(), PoseClass::COUNT);
        assert_eq!(PoseClass::COUNT, 22);
    }

    #[test]
    fn indices_round_trip() {
        for (i, &p) in PoseClass::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(PoseClass::from_index(i), p);
        }
    }

    #[test]
    fn stage_partition_sizes() {
        assert_eq!(PoseClass::in_stage(JumpStage::BeforeJumping).len(), 7);
        assert_eq!(PoseClass::in_stage(JumpStage::Jumping).len(), 4);
        assert_eq!(PoseClass::in_stage(JumpStage::InAir).len(), 6);
        assert_eq!(PoseClass::in_stage(JumpStage::Landing).len(), 5);
    }

    #[test]
    fn every_pose_belongs_to_its_stage_partition() {
        for &p in &PoseClass::ALL {
            assert!(PoseClass::in_stage(p.stage()).contains(&p));
        }
    }

    #[test]
    fn papers_named_poses_exist() {
        assert_eq!(
            PoseClass::StandingHandsOverlap.to_string(),
            "standing & hand overlap with body"
        );
        assert_eq!(
            PoseClass::StandingHandsSwungForward.to_string(),
            "standing & hand swung forward"
        );
        assert_eq!(
            PoseClass::TakeoffExtendedHandsForward.to_string(),
            "knee and foot extended & hand raised forward"
        );
        assert_eq!(
            PoseClass::WaistBentHandsForward.to_string(),
            "waist bended & hand raised forward"
        );
    }

    #[test]
    fn initial_and_majority_are_the_papers() {
        assert_eq!(PoseClass::initial(), PoseClass::StandingHandsOverlap);
        assert_eq!(PoseClass::majority(), PoseClass::StandingHandsSwungForward);
        assert_eq!(PoseClass::initial().stage(), JumpStage::BeforeJumping);
    }

    #[test]
    fn canonical_angles_are_distinct() {
        // No two poses may share an identical configuration, or they
        // would be indistinguishable by construction.
        for (i, &a) in PoseClass::ALL.iter().enumerate() {
            for &b in &PoseClass::ALL[i + 1..] {
                assert_ne!(
                    a.canonical_angles(),
                    b.canonical_angles(),
                    "{a} and {b} share canonical angles"
                );
            }
        }
    }

    #[test]
    fn canonical_angles_are_finite_and_bounded() {
        for &p in &PoseClass::ALL {
            let a = p.canonical_angles();
            for v in [
                a.torso_lean,
                a.shoulder,
                a.elbow,
                a.hip_front,
                a.knee_front,
                a.hip_back,
                a.knee_back,
            ] {
                assert!(v.is_finite());
                assert!(
                    v.abs() < std::f64::consts::PI,
                    "{p}: angle {v} out of range"
                );
            }
        }
    }

    #[test]
    fn airborne_poses_are_marked() {
        assert!(PoseClass::AirborneTuck.is_airborne());
        assert!(!PoseClass::StandingHandsOverlap.is_airborne());
        assert!(!PoseClass::LandingAbsorb.is_airborne());
        assert!(PoseClass::LandingReach.is_airborne());
        let airborne_count = PoseClass::ALL.iter().filter(|p| p.is_airborne()).count();
        assert_eq!(airborne_count, 9);
    }
}
