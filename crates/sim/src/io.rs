//! Saving and loading labelled clips.
//!
//! A clip is stored as a directory: `background.ppm`, one
//! `frame_NNN.ppm` per frame, and a `labels.tsv` manifest with one line
//! per frame (`index, stage, pose`). This is the bridge between the
//! synthetic generator and any external tool — and, in the other
//! direction, how real extracted video frames would enter the pipeline.
//!
//! Ground-truth silhouettes and joint positions are *not* persisted
//! (real video would not have them either); a reloaded clip carries the
//! label part of the truth only.

use crate::dataset::LabeledClip;
use crate::pose::PoseClass;
use crate::stage::JumpStage;
use slj_imaging::error::ImagingError;
use slj_imaging::io::{read_ppm, save_ppm};
use std::path::Path;

/// A clip reloaded from disk: frames, background and per-frame labels.
#[derive(Debug, Clone)]
pub struct StoredClip {
    /// RGB frames in order.
    pub frames: Vec<slj_imaging::image::RgbImage>,
    /// The clip's background frame.
    pub background: slj_imaging::image::RgbImage,
    /// Per-frame `(stage, pose)` labels, aligned with `frames`.
    pub labels: Vec<(JumpStage, PoseClass)>,
}

/// Saves a clip into `dir` (created if absent).
///
/// # Errors
///
/// Propagates filesystem and encoding failures as [`ImagingError`].
pub fn save_clip(dir: impl AsRef<Path>, clip: &LabeledClip) -> Result<(), ImagingError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    save_ppm(dir.join("background.ppm"), &clip.background)?;
    let mut manifest = String::from("# frame\tstage\tpose\n");
    for (i, (frame, truth)) in clip.frames.iter().zip(&clip.truth).enumerate() {
        save_ppm(dir.join(format!("frame_{i:03}.ppm")), frame)?;
        manifest.push_str(&format!(
            "{i}\t{}\t{}\n",
            truth.stage.index(),
            truth.pose.index()
        ));
    }
    std::fs::write(dir.join("labels.tsv"), manifest)?;
    Ok(())
}

/// Loads a clip saved by [`save_clip`].
///
/// # Errors
///
/// Returns [`ImagingError::MalformedPnm`] for unreadable images and
/// [`ImagingError::Io`] for missing files or a malformed manifest.
pub fn load_clip(dir: impl AsRef<Path>) -> Result<StoredClip, ImagingError> {
    let dir = dir.as_ref();
    let background = read_ppm(std::fs::File::open(dir.join("background.ppm"))?)?;
    let manifest = std::fs::read_to_string(dir.join("labels.tsv"))?;
    let mut frames = Vec::new();
    let mut labels = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let parse = |field: Option<&str>, what: &str| -> Result<usize, ImagingError> {
            field.and_then(|f| f.parse().ok()).ok_or_else(|| {
                ImagingError::Io(format!("malformed manifest line ({what}): {line}"))
            })
        };
        let idx = parse(cols.next(), "frame index")?;
        let stage = parse(cols.next(), "stage")?;
        let pose = parse(cols.next(), "pose")?;
        if stage >= JumpStage::COUNT || pose >= PoseClass::COUNT {
            return Err(ImagingError::Io(format!(
                "label out of range in manifest line: {line}"
            )));
        }
        if idx != frames.len() {
            return Err(ImagingError::Io(format!(
                "manifest indices must be dense and ordered, got {idx} at position {}",
                frames.len()
            )));
        }
        let frame = read_ppm(std::fs::File::open(
            dir.join(format!("frame_{idx:03}.ppm")),
        )?)?;
        if frame.dimensions() != background.dimensions() {
            return Err(ImagingError::DimensionMismatch {
                left: background.dimensions(),
                right: frame.dimensions(),
            });
        }
        frames.push(frame);
        labels.push((JumpStage::from_index(stage), PoseClass::from_index(pose)));
    }
    if frames.is_empty() {
        return Err(ImagingError::Io("manifest lists no frames".into()));
    }
    Ok(StoredClip {
        frames,
        background,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{ClipSpec, JumpSimulator};
    use crate::noise::NoiseConfig;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slj_sim_io_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_clip() -> LabeledClip {
        JumpSimulator::new(61).generate_clip(&ClipSpec {
            total_frames: 22,
            seed: 1,
            noise: NoiseConfig::default(),
            ..ClipSpec::default()
        })
    }

    #[test]
    fn round_trip_preserves_frames_and_labels() {
        let dir = temp_dir("round_trip");
        let clip = small_clip();
        save_clip(&dir, &clip).unwrap();
        let loaded = load_clip(&dir).unwrap();
        assert_eq!(loaded.frames.len(), clip.len());
        assert_eq!(loaded.frames, clip.frames);
        assert_eq!(loaded.background, clip.background);
        for (loaded_label, truth) in loaded.labels.iter().zip(&clip.truth) {
            assert_eq!(loaded_label.0, truth.stage);
            assert_eq!(loaded_label.1, truth.pose);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_fails_cleanly() {
        assert!(load_clip(temp_dir("missing")).is_err());
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let dir = temp_dir("corrupt");
        let clip = small_clip();
        save_clip(&dir, &clip).unwrap();
        std::fs::write(dir.join("labels.tsv"), "0\tnot_a_number\t3\n").unwrap();
        assert!(load_clip(&dir).is_err());
        std::fs::write(dir.join("labels.tsv"), "5\t0\t0\n").unwrap();
        assert!(load_clip(&dir).is_err(), "non-dense indices rejected");
        std::fs::write(dir.join("labels.tsv"), "0\t9\t0\n").unwrap();
        assert!(load_clip(&dir).is_err(), "out-of-range stage rejected");
        std::fs::write(dir.join("labels.tsv"), "# only comments\n").unwrap();
        assert!(load_clip(&dir).is_err(), "empty manifest rejected");
        std::fs::remove_dir_all(&dir).ok();
    }
}
