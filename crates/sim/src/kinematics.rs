//! Forward kinematics: joint angles → 2-D joint positions.
//!
//! Coordinates are image coordinates (x right = the jump direction when
//! filmed from the jumper's left side, y down). Limb angles are measured
//! from "straight down" (+y), positive swinging forward (+x); the torso
//! lean is measured from "straight up" (−y), positive leaning forward.

use crate::body::BodyModel;

/// Joint-angle configuration of the jumper (radians).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JointAngles {
    /// Torso lean from vertical; positive = leaning forward.
    pub torso_lean: f64,
    /// Arm angle relative to straight-down; positive = forward,
    /// π = overhead.
    pub shoulder: f64,
    /// Forearm bend relative to the upper arm; positive = forward.
    pub elbow: f64,
    /// Front-leg thigh angle relative to straight-down; positive = knee
    /// forward.
    pub hip_front: f64,
    /// Front-leg knee flexion; positive bends the shin backward.
    pub knee_front: f64,
    /// Back-leg thigh angle.
    pub hip_back: f64,
    /// Back-leg knee flexion.
    pub knee_back: f64,
}

impl JointAngles {
    /// Linear interpolation toward `other` by `t ∈ [0, 1]`.
    pub fn lerp(&self, other: &JointAngles, t: f64) -> JointAngles {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: f64, b: f64| a + (b - a) * t;
        JointAngles {
            torso_lean: mix(self.torso_lean, other.torso_lean),
            shoulder: mix(self.shoulder, other.shoulder),
            elbow: mix(self.elbow, other.elbow),
            hip_front: mix(self.hip_front, other.hip_front),
            knee_front: mix(self.knee_front, other.knee_front),
            hip_back: mix(self.hip_back, other.hip_back),
            knee_back: mix(self.knee_back, other.knee_back),
        }
    }

    /// Adds `jitter` to every angle (used for per-frame pose noise).
    pub fn jittered(&self, jitter: &JointAngles) -> JointAngles {
        JointAngles {
            torso_lean: self.torso_lean + jitter.torso_lean,
            shoulder: self.shoulder + jitter.shoulder,
            elbow: self.elbow + jitter.elbow,
            hip_front: self.hip_front + jitter.hip_front,
            knee_front: self.knee_front + jitter.knee_front,
            hip_back: self.hip_back + jitter.hip_back,
            knee_back: self.knee_back + jitter.knee_back,
        }
    }
}

/// A 2-D point `(x, y)` in image coordinates.
pub type Point = (f64, f64);

/// The resolved joint positions of one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Skeleton2D {
    /// Hip (root of the kinematic chain; also the anatomical waist).
    pub hip: Point,
    /// Neck (top of the torso; also the shoulder joint).
    pub neck: Point,
    /// Head centre.
    pub head: Point,
    /// Chest (between neck and hip, on the torso axis).
    pub chest: Point,
    /// Elbow.
    pub elbow: Point,
    /// Hand tip.
    pub hand: Point,
    /// Front-leg knee.
    pub knee_front: Point,
    /// Front-leg foot tip.
    pub foot_front: Point,
    /// Back-leg knee.
    pub knee_back: Point,
    /// Back-leg foot tip.
    pub foot_back: Point,
}

impl Skeleton2D {
    /// The lowest point of the body (max y over foot tips and hip — the
    /// foot in any normal pose).
    pub fn lowest_point(&self) -> Point {
        [self.foot_front, self.foot_back, self.hip, self.hand]
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    /// Vertical drop from the hip to the lowest foot (how far below the
    /// root the body extends); used to pin the feet to the ground.
    pub fn foot_drop(&self) -> f64 {
        self.foot_front.1.max(self.foot_back.1) - self.hip.1
    }
}

/// Direction unit vector for a limb angle measured from straight-down,
/// positive toward +x.
fn down_dir(angle: f64) -> Point {
    (angle.sin(), angle.cos())
}

/// Direction unit vector for the torso angle measured from straight-up,
/// positive toward +x.
fn up_dir(angle: f64) -> Point {
    (angle.sin(), -angle.cos())
}

/// Computes all joint positions for a body at `hip` with the given
/// angles.
pub fn solve(body: &BodyModel, hip: Point, angles: &JointAngles) -> Skeleton2D {
    let up = up_dir(angles.torso_lean);
    let neck = (hip.0 + body.torso * up.0, hip.1 + body.torso * up.1);
    let head = (
        neck.0 + (body.neck + body.head_radius) * up.0,
        neck.1 + (body.neck + body.head_radius) * up.1,
    );
    let chest = (
        hip.0 + 0.75 * body.torso * up.0,
        hip.1 + 0.75 * body.torso * up.1,
    );
    // Arm hangs from the neck; its angle composes the torso lean so the
    // arm moves with the trunk.
    let arm_dir = down_dir(angles.torso_lean + angles.shoulder);
    let elbow = (
        neck.0 + body.upper_arm * arm_dir.0,
        neck.1 + body.upper_arm * arm_dir.1,
    );
    let fore_dir = down_dir(angles.torso_lean + angles.shoulder + angles.elbow);
    let hand = (
        elbow.0 + body.forearm * fore_dir.0,
        elbow.1 + body.forearm * fore_dir.1,
    );
    // Legs hang from the hip. Knee flexion bends the shin backward.
    let leg = |hip_angle: f64, knee_flex: f64| -> (Point, Point) {
        let thigh_dir = down_dir(angles.torso_lean + hip_angle);
        let knee = (
            hip.0 + body.thigh * thigh_dir.0,
            hip.1 + body.thigh * thigh_dir.1,
        );
        let shin_dir = down_dir(angles.torso_lean + hip_angle - knee_flex);
        let foot = (
            knee.0 + body.shin * shin_dir.0,
            knee.1 + body.shin * shin_dir.1,
        );
        (knee, foot)
    };
    let (knee_front, foot_front) = leg(angles.hip_front, angles.knee_front);
    let (knee_back, foot_back) = leg(angles.hip_back, angles.knee_back);
    Skeleton2D {
        hip,
        neck,
        head,
        chest,
        elbow,
        hand,
        knee_front,
        foot_front,
        knee_back,
        foot_back,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pose::PoseClass;

    fn body() -> BodyModel {
        BodyModel::default()
    }

    #[test]
    fn upright_pose_is_vertical() {
        let angles = JointAngles::default();
        let s = solve(&body(), (50.0, 60.0), &angles);
        // Straight body: head directly above hip, feet directly below.
        assert!((s.head.0 - 50.0).abs() < 1e-9);
        assert!(s.head.1 < s.neck.1);
        assert!(s.neck.1 < s.chest.1);
        assert!(s.chest.1 < s.hip.1);
        assert!((s.foot_front.0 - 50.0).abs() < 1e-9);
        assert!(s.foot_front.1 > s.knee_front.1);
        assert!(s.knee_front.1 > s.hip.1);
    }

    #[test]
    fn forward_lean_moves_head_forward() {
        let mut angles = JointAngles::default();
        angles.torso_lean = 0.5;
        let s = solve(&body(), (50.0, 60.0), &angles);
        assert!(s.head.0 > 50.0, "leaning forward moves the head to +x");
        assert!(s.head.1 > solve(&body(), (50.0, 60.0), &JointAngles::default()).head.1);
    }

    #[test]
    fn shoulder_swing_moves_hand() {
        let mut angles = JointAngles::default();
        angles.shoulder = std::f64::consts::FRAC_PI_2; // horizontal forward
        let s = solve(&body(), (50.0, 60.0), &angles);
        assert!(s.hand.0 > s.neck.0 + 10.0, "hand reaches forward");
        assert!(
            (s.hand.1 - s.neck.1).abs() < 1.0,
            "hand near shoulder height"
        );
        // Overhead.
        angles.shoulder = std::f64::consts::PI;
        let s2 = solve(&body(), (50.0, 60.0), &angles);
        assert!(s2.hand.1 < s2.head.1, "hand above the head");
    }

    #[test]
    fn knee_flexion_bends_shin_backward() {
        let mut angles = JointAngles::default();
        angles.hip_front = 0.3;
        angles.knee_front = 1.2;
        let s = solve(&body(), (50.0, 60.0), &angles);
        // The foot ends up behind the knee.
        assert!(s.foot_front.0 < s.knee_front.0);
    }

    #[test]
    fn limb_lengths_are_preserved() {
        let b = body();
        for &pose in &PoseClass::ALL {
            let s = solve(&b, (80.0, 60.0), &pose.canonical_angles());
            let d = |a: Point, c: Point| ((a.0 - c.0).powi(2) + (a.1 - c.1).powi(2)).sqrt();
            assert!((d(s.hip, s.neck) - b.torso).abs() < 1e-9, "{pose}");
            assert!((d(s.neck, s.elbow) - b.upper_arm).abs() < 1e-9, "{pose}");
            assert!((d(s.elbow, s.hand) - b.forearm).abs() < 1e-9, "{pose}");
            assert!((d(s.hip, s.knee_front) - b.thigh).abs() < 1e-9, "{pose}");
            assert!(
                (d(s.knee_front, s.foot_front) - b.shin).abs() < 1e-9,
                "{pose}"
            );
        }
    }

    #[test]
    fn lowest_point_is_a_foot_in_standing_poses() {
        let s = solve(
            &body(),
            (50.0, 60.0),
            &PoseClass::StandingHandsOverlap.canonical_angles(),
        );
        let low = s.lowest_point();
        assert!((low.1 - s.foot_front.1.max(s.foot_back.1)).abs() < 1e-9);
        assert!(s.foot_drop() > 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = PoseClass::StandingHandsOverlap.canonical_angles();
        let b = PoseClass::AirborneTuck.canonical_angles();
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.shoulder - (a.shoulder + b.shoulder) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_adds_componentwise() {
        let a = PoseClass::StandingHandsOverlap.canonical_angles();
        let j = JointAngles {
            shoulder: 0.1,
            ..JointAngles::default()
        };
        let out = a.jittered(&j);
        assert!((out.shoulder - a.shoulder - 0.1).abs() < 1e-12);
        assert_eq!(out.torso_lean, a.torso_lean);
    }
}
