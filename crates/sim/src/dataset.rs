//! Clip and dataset generation.
//!
//! [`JumpSimulator::paper_dataset`] reproduces the paper's data regime
//! exactly: 12 training clips totalling 522 frames and 3 test clips
//! totalling 135 frames (Section 5).

use crate::body::BodyModel;
use crate::faults::JumpFault;
use crate::kinematics::Skeleton2D;
use crate::noise::NoiseConfig;
use crate::pose::PoseClass;
use crate::render::Renderer;
use crate::script::{choreograph, JumpScript, SceneParams};
use crate::stage::JumpStage;
use rand::SeedableRng;
use slj_imaging::binary::BinaryImage;
use slj_imaging::image::RgbImage;

/// Ground truth for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTruth {
    /// Jump stage.
    pub stage: JumpStage,
    /// Pose label.
    pub pose: PoseClass,
    /// Exact joint positions.
    pub skeleton: Skeleton2D,
    /// Clean (uncorrupted) silhouette.
    pub silhouette: BinaryImage,
}

/// A rendered, labelled video clip.
#[derive(Debug, Clone)]
pub struct LabeledClip {
    /// Clip identifier within its dataset.
    pub id: usize,
    /// RGB video frames.
    pub frames: Vec<RgbImage>,
    /// The clean background frame (known to the extractor, as in the
    /// paper's studio setup).
    pub background: RgbImage,
    /// Per-frame ground truth, aligned with `frames`.
    pub truth: Vec<FrameTruth>,
    /// The fault injected into this clip, if any.
    pub fault: Option<JumpFault>,
}

impl LabeledClip {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The ground-truth pose sequence.
    pub fn pose_sequence(&self) -> Vec<PoseClass> {
        self.truth.iter().map(|t| t.pose).collect()
    }
}

/// Specification of one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipSpec {
    /// Exact frame count (the script is reshaped to fit).
    pub total_frames: usize,
    /// Per-clip seed (combined with the simulator's master seed).
    pub seed: u64,
    /// Jumper size multiplier.
    pub body_scale: f64,
    /// Noise configuration.
    pub noise: NoiseConfig,
    /// Use the rare-pose script variant instead of the standard one.
    pub rare_poses: bool,
    /// Inject a standards violation.
    pub fault: Option<JumpFault>,
}

impl Default for ClipSpec {
    fn default() -> Self {
        ClipSpec {
            total_frames: 44,
            seed: 0,
            body_scale: 1.0,
            noise: NoiseConfig::default(),
            rare_poses: false,
            fault: None,
        }
    }
}

/// A train/test dataset of labelled clips.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training clips.
    pub train: Vec<LabeledClip>,
    /// Test clips.
    pub test: Vec<LabeledClip>,
}

impl Dataset {
    /// Total training frames.
    pub fn train_frames(&self) -> usize {
        self.train.iter().map(LabeledClip::len).sum()
    }

    /// Total test frames.
    pub fn test_frames(&self) -> usize {
        self.test.iter().map(LabeledClip::len).sum()
    }

    /// Frame counts per pose over the training set — the class imbalance
    /// §4.2 of the paper discusses ("different poses in the training
    /// samples do not appear equally").
    pub fn train_pose_histogram(&self) -> [usize; PoseClass::COUNT] {
        let mut counts = [0usize; PoseClass::COUNT];
        for clip in &self.train {
            for t in &clip.truth {
                counts[t.pose.index()] += 1;
            }
        }
        counts
    }
}

/// Deterministic clip generator.
///
/// # Examples
///
/// ```
/// use slj_sim::{ClipSpec, JumpSimulator};
///
/// let sim = JumpSimulator::new(42);
/// let clip = sim.generate_clip(&ClipSpec { total_frames: 40, ..ClipSpec::default() });
/// assert_eq!(clip.len(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JumpSimulator {
    master_seed: u64,
    scene: SceneParamsWrapper,
}

// SceneParams is not Eq (f64); wrap for the simulator's derives.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SceneParamsWrapper(SceneParams);
impl Eq for SceneParamsWrapper {}

impl JumpSimulator {
    /// Creates a simulator with the default scene.
    pub fn new(master_seed: u64) -> Self {
        JumpSimulator {
            master_seed,
            scene: SceneParamsWrapper(SceneParams::default()),
        }
    }

    /// Scene parameters used for all clips.
    pub fn scene(&self) -> SceneParams {
        self.scene.0
    }

    /// Generates one clip.
    pub fn generate_clip(&self, spec: &ClipSpec) -> LabeledClip {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.master_seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(spec.seed),
        );
        let scene = self.scene.0;
        let body = BodyModel::default().scaled(spec.body_scale);
        let mut script = if spec.rare_poses {
            JumpScript::with_rare_poses()
        } else {
            JumpScript::standard()
        };
        if let Some(fault) = spec.fault {
            script = fault.apply(&script);
        }
        let script = script
            .jitter_durations(&mut rng)
            .with_total_frames(spec.total_frames);
        let frame_specs = choreograph(&script, &body, &scene, spec.noise.angle_jitter, &mut rng);

        let renderer = Renderer::new(scene.width, scene.height);
        let background = renderer.background(&mut rng);
        let mut frames = Vec::with_capacity(frame_specs.len());
        let mut truth = Vec::with_capacity(frame_specs.len());
        for fs in frame_specs {
            let clean = renderer.silhouette(&body, &fs.skeleton);
            let corrupted = renderer.corrupt_silhouette(&clean, &spec.noise, &mut rng);
            let frame = renderer.frame(&background, &corrupted, &spec.noise, &mut rng);
            frames.push(frame);
            truth.push(FrameTruth {
                stage: fs.stage,
                pose: fs.pose,
                skeleton: fs.skeleton,
                silhouette: clean,
            });
        }
        LabeledClip {
            id: spec.seed as usize,
            frames,
            background,
            truth,
            fault: spec.fault,
        }
    }

    /// Generates the paper's dataset: 12 training clips (522 frames) and
    /// 3 test clips (135 frames), with varied jumper sizes and scripts.
    pub fn paper_dataset(&self, noise: &NoiseConfig) -> Dataset {
        // 12 clips of 43/44 frames: 6×43 + 6×44 = 522.
        let train = (0..12)
            .map(|i| {
                self.generate_clip(&ClipSpec {
                    total_frames: if i % 2 == 0 { 43 } else { 44 },
                    seed: i as u64,
                    body_scale: 0.92 + 0.03 * (i % 5) as f64,
                    noise: *noise,
                    rare_poses: i % 3 == 2,
                    fault: None,
                })
            })
            .collect();
        // 3 clips of 45 frames: 135.
        let test = (0..3)
            .map(|i| {
                self.generate_clip(&ClipSpec {
                    total_frames: 45,
                    seed: 1000 + i as u64,
                    body_scale: 0.94 + 0.04 * i as f64,
                    noise: *noise,
                    rare_poses: i == 1,
                    fault: None,
                })
            })
            .collect();
        Dataset { train, test }
    }

    /// Generates `n` extra training clips beyond the paper's 12 (for the
    /// training-set-size experiment E9). Seeds continue after the paper
    /// set so the first 12 match [`JumpSimulator::paper_dataset`].
    pub fn extra_training_clips(&self, n: usize, noise: &NoiseConfig) -> Vec<LabeledClip> {
        (0..n)
            .map(|i| {
                self.generate_clip(&ClipSpec {
                    total_frames: 43 + (i % 3),
                    seed: 100 + i as u64,
                    body_scale: 0.9 + 0.025 * (i % 7) as f64,
                    noise: *noise,
                    rare_poses: i % 3 == 1,
                    fault: None,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_has_consistent_lengths() {
        let sim = JumpSimulator::new(1);
        let clip = sim.generate_clip(&ClipSpec::default());
        assert_eq!(clip.frames.len(), 44);
        assert_eq!(clip.truth.len(), 44);
        assert_eq!(clip.pose_sequence().len(), 44);
        assert!(!clip.is_empty());
    }

    #[test]
    fn clip_is_deterministic() {
        let sim = JumpSimulator::new(5);
        let spec = ClipSpec::default();
        let a = sim.generate_clip(&spec);
        let b = sim.generate_clip(&spec);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.truth.len(), b.truth.len());
        for (ta, tb) in a.truth.iter().zip(&b.truth) {
            assert_eq!(ta.pose, tb.pose);
            assert_eq!(ta.silhouette, tb.silhouette);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let sim = JumpSimulator::new(5);
        let a = sim.generate_clip(&ClipSpec {
            seed: 1,
            ..ClipSpec::default()
        });
        let b = sim.generate_clip(&ClipSpec {
            seed: 2,
            ..ClipSpec::default()
        });
        assert_ne!(a.frames, b.frames);
    }

    #[test]
    fn paper_dataset_matches_the_papers_counts() {
        let sim = JumpSimulator::new(7);
        let ds = sim.paper_dataset(&NoiseConfig::default());
        assert_eq!(ds.train.len(), 12);
        assert_eq!(ds.test.len(), 3);
        assert_eq!(ds.train_frames(), 522, "12 training clips, 522 frames");
        assert_eq!(ds.test_frames(), 135, "3 test clips, 135 frames");
    }

    #[test]
    fn paper_dataset_training_covers_all_poses() {
        let sim = JumpSimulator::new(7);
        let ds = sim.paper_dataset(&NoiseConfig::default());
        let mut seen = std::collections::HashSet::new();
        for clip in &ds.train {
            for t in &clip.truth {
                seen.insert(t.pose);
            }
        }
        assert_eq!(seen.len(), PoseClass::COUNT, "all 22 poses in training");
    }

    #[test]
    fn majority_pose_matches_the_papers_claim() {
        // "'Standing & hand swung forward' appears most of the time":
        // the generator's class balance must agree with the pose the
        // classifier exempts from Th_Pose.
        let sim = JumpSimulator::new(7);
        let ds = sim.paper_dataset(&NoiseConfig::default());
        let hist = ds.train_pose_histogram();
        let most_frequent = hist
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| PoseClass::from_index(i))
            .unwrap();
        assert_eq!(most_frequent, PoseClass::majority());
        // And the rare poses really are rare (paper: "may appear much
        // less frequently").
        let rare = hist[PoseClass::WaistBentHandsForward.index()];
        assert!(
            rare * 3 < hist[PoseClass::majority().index()],
            "rare {rare} vs majority {}",
            hist[PoseClass::majority().index()]
        );
        assert_eq!(hist.iter().sum::<usize>(), ds.train_frames());
    }

    #[test]
    fn stages_are_monotone_within_clips() {
        let sim = JumpSimulator::new(3);
        let ds = sim.paper_dataset(&NoiseConfig::default());
        for clip in ds.train.iter().chain(&ds.test) {
            let mut prev = 0;
            for t in &clip.truth {
                assert!(t.stage.index() >= prev);
                prev = t.stage.index();
            }
        }
    }

    #[test]
    fn faulty_clip_carries_its_fault() {
        let sim = JumpSimulator::new(9);
        let clip = sim.generate_clip(&ClipSpec {
            fault: Some(JumpFault::NoTuck),
            ..ClipSpec::default()
        });
        assert_eq!(clip.fault, Some(JumpFault::NoTuck));
        assert!(!clip.pose_sequence().contains(&PoseClass::AirborneTuck));
    }

    #[test]
    fn silhouettes_are_nonempty_and_in_frame() {
        let sim = JumpSimulator::new(4);
        let clip = sim.generate_clip(&ClipSpec::default());
        for (i, t) in clip.truth.iter().enumerate() {
            assert!(
                t.silhouette.count_ones() > 200,
                "frame {i} silhouette too small"
            );
        }
    }

    #[test]
    fn extra_clips_are_distinct_from_paper_set() {
        let sim = JumpSimulator::new(11);
        let extra = sim.extra_training_clips(4, &NoiseConfig::default());
        assert_eq!(extra.len(), 4);
        let ds = sim.paper_dataset(&NoiseConfig::default());
        assert_ne!(extra[0].frames, ds.train[0].frames);
    }
}
