//! The default standing-long-jump taxonomy artifact.
//!
//! [`PoseClass`]/[`JumpStage`]/[`JumpFault`] remain the *generators* of
//! the shipped artifact: the enums carry the canonical joint-angle
//! configurations the simulator renders, and this module derives the
//! data-driven [`Taxonomy`] from them — machine names from the enum
//! variants (`Debug`), report names from their `Display` impls, the
//! stage partition from [`PoseClass::stage`], transition legality from
//! [`JumpStage::can_transition_to`], and the five standards faults as
//! declarative rules. Everything above the simulator consumes the
//! artifact, never the enums, so a new exercise ships as a file.

use crate::faults::JumpFault;
use crate::pose::PoseClass;
use crate::stage::JumpStage;
use slj_taxonomy::{FaultRule, Polarity, PoseInfo, StageInfo, Taxonomy};

/// Minimum number of matching frames for a movement to count as
/// performed (a single glitch frame should not satisfy a rule).
pub const MIN_EVIDENCE_FRAMES: usize = 2;

/// Evidence poses, polarity and advice for one standards fault.
///
/// The scoring rules implied by the taxonomy, as data: a `Require`
/// fault fires when its evidence poses appear on fewer than
/// [`MIN_EVIDENCE_FRAMES`] frames; a `Forbid` fault fires when they
/// reach it.
pub fn fault_rule_of(fault: JumpFault) -> (Polarity, Vec<PoseClass>, JumpStage, &'static str) {
    use PoseClass::*;
    match fault {
        JumpFault::NoArmSwing => (
            Polarity::Require,
            vec![
                StandingHandsSwungBack,
                KneesBentHandsBack,
                WaistBentHandsBack,
            ],
            JumpStage::BeforeJumping,
            "swing the arms backward during the preparation to build momentum",
        ),
        JumpFault::NoCrouch => (
            Polarity::Require,
            vec![KneesBentHandsBack, KneesBentHandsForward],
            JumpStage::BeforeJumping,
            "bend the knees deeply before take-off",
        ),
        JumpFault::NoTuck => (
            Polarity::Require,
            vec![AirborneTuck],
            JumpStage::InAir,
            "tuck the knees toward the chest at the top of the flight",
        ),
        JumpFault::StiffLanding => (
            Polarity::Require,
            vec![LandingAbsorb],
            JumpStage::Landing,
            "bend the knees on touch-down to absorb the impact",
        ),
        JumpFault::Overbalance => (
            Polarity::Forbid,
            vec![LandingOverbalanced],
            JumpStage::Landing,
            "keep the torso over the feet after landing",
        ),
    }
}

/// Builds the shipped standing-long-jump taxonomy.
///
/// The artifact reproduces the legacy hard-coded vocabulary exactly:
/// pose index `i` is `PoseClass::from_index(i)`, stage index `s` is
/// `JumpStage::from_index(s)`, and the fault rules fire on precisely
/// the sequences the legacy scorer flagged.
pub fn default_taxonomy() -> Taxonomy {
    let stages: Vec<StageInfo> = JumpStage::ALL
        .iter()
        .map(|s| StageInfo {
            ident: format!("{s:?}"),
            display: s.to_string(),
        })
        .collect();
    let poses: Vec<PoseInfo> = PoseClass::ALL
        .iter()
        .map(|p| PoseInfo {
            ident: format!("{p:?}"),
            display: p.to_string(),
            stage: p.stage().index(),
        })
        .collect();
    // Stay-or-advance chain prior; zero entries encode illegal
    // transitions (what the trainer smooths over).
    let stage_prior: Vec<Vec<f64>> = JumpStage::ALL
        .iter()
        .map(|&from| {
            let legal: Vec<usize> = JumpStage::ALL
                .iter()
                .filter(|&&to| from.can_transition_to(to))
                .map(|&to| to.index())
                .collect();
            let mut row = vec![0.0; JumpStage::COUNT];
            for &to in &legal {
                row[to] = 1.0 / legal.len() as f64;
            }
            row
        })
        .collect();
    let faults: Vec<FaultRule> = JumpFault::ALL
        .iter()
        .map(|&fault| {
            let (polarity, evidence, stage, advice) = fault_rule_of(fault);
            FaultRule {
                ident: format!("{fault:?}"),
                display: fault.to_string(),
                stage: stage.index(),
                polarity,
                poses: evidence.into_iter().map(|p| p.index()).collect(),
                min_frames: MIN_EVIDENCE_FRAMES,
                advice: advice.to_string(),
            }
        })
        .collect();
    Taxonomy::new(
        "standing-long-jump",
        5,
        stages,
        poses,
        PoseClass::initial().index(),
        Some(PoseClass::majority().index()),
        stage_prior,
        faults,
    )
    // slj-check: allow(robustness/no-panic-in-lib) — built from the statically-exhaustive enums; validity is pinned by this module's tests, so Err is unreachable
    .unwrap_or_else(|e| unreachable!("default taxonomy is statically valid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_enums() {
        let t = default_taxonomy();
        assert_eq!(t.name(), "standing-long-jump");
        assert_eq!(t.pose_count(), PoseClass::COUNT);
        assert_eq!(t.stage_count(), JumpStage::COUNT);
        assert_eq!(t.parts(), 5);
        for (i, &p) in PoseClass::ALL.iter().enumerate() {
            assert_eq!(t.pose_ident(i), format!("{p:?}"));
            assert_eq!(t.pose_display(i), p.to_string());
            assert_eq!(t.stage_of_pose(i), p.stage().index());
        }
        for (s, &stage) in JumpStage::ALL.iter().enumerate() {
            assert_eq!(t.stage_ident(s), format!("{stage:?}"));
            assert_eq!(t.stage_display(s), stage.to_string());
        }
        assert_eq!(t.initial_pose(), PoseClass::initial().index());
        assert_eq!(t.majority_pose(), Some(PoseClass::majority().index()));
    }

    #[test]
    fn legality_matches_the_stage_chain() {
        let t = default_taxonomy();
        for &from in &JumpStage::ALL {
            for &to in &JumpStage::ALL {
                assert_eq!(
                    t.can_transition(from.index(), to.index()),
                    from.can_transition_to(to),
                    "{from:?} -> {to:?}"
                );
            }
        }
    }

    #[test]
    fn fault_rules_follow_jumpfault_order() {
        let t = default_taxonomy();
        assert_eq!(t.faults().len(), JumpFault::ALL.len());
        for (rule, &fault) in t.faults().iter().zip(JumpFault::ALL.iter()) {
            assert_eq!(rule.ident, format!("{fault:?}"));
            assert_eq!(rule.display, fault.to_string());
            assert_eq!(rule.min_frames, MIN_EVIDENCE_FRAMES);
        }
    }

    #[test]
    fn artifact_round_trips() {
        let t = default_taxonomy();
        let back = slj_taxonomy::Taxonomy::from_artifact_str(&t.to_artifact_string())
            .expect("default artifact parses");
        assert_eq!(back, t);
    }
}
