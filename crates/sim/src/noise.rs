//! Noise models for the rendered clips.

/// Degradations applied when turning clean silhouettes into video frames,
/// emulating the artefacts the paper's studio footage shows: Figure 1(b)'s
/// "small holes and ridged edges", lighting drift between frames, and
/// sensor speckle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Per-frame joint-angle jitter in radians (pose execution sloppiness).
    pub angle_jitter: f64,
    /// Max absolute per-frame brightness shift of the background.
    pub lighting_jitter: u8,
    /// Probability of a speckle (salt) pixel per frame pixel.
    pub speckle_prob: f64,
    /// Probability that a silhouette *boundary* pixel is dropped
    /// (ragged edges).
    pub edge_dropout_prob: f64,
    /// Probability that a silhouette *interior* pixel is dropped
    /// (small holes).
    pub hole_prob: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            angle_jitter: 0.055,
            lighting_jitter: 6,
            speckle_prob: 0.0012,
            edge_dropout_prob: 0.22,
            hole_prob: 0.004,
        }
    }
}

impl NoiseConfig {
    /// A completely clean configuration (no degradation at all).
    pub fn clean() -> Self {
        NoiseConfig {
            angle_jitter: 0.0,
            lighting_jitter: 0,
            speckle_prob: 0.0,
            edge_dropout_prob: 0.0,
            hole_prob: 0.0,
        }
    }

    /// Scales all degradations by `factor` (angle jitter included);
    /// useful for noise sweeps (Experiment E2).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite factor.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "noise scale must be non-negative, got {factor}"
        );
        NoiseConfig {
            angle_jitter: self.angle_jitter * factor,
            lighting_jitter: ((self.lighting_jitter as f64 * factor).round() as u64).min(120) as u8,
            speckle_prob: (self.speckle_prob * factor).min(1.0),
            edge_dropout_prob: (self.edge_dropout_prob * factor).min(1.0),
            hole_prob: (self.hole_prob * factor).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_is_all_zero() {
        let c = NoiseConfig::clean();
        assert_eq!(c.angle_jitter, 0.0);
        assert_eq!(c.lighting_jitter, 0);
        assert_eq!(c.speckle_prob, 0.0);
        assert_eq!(c.edge_dropout_prob, 0.0);
        assert_eq!(c.hole_prob, 0.0);
    }

    #[test]
    fn scaling_zero_gives_clean() {
        let s = NoiseConfig::default().scaled(0.0);
        assert_eq!(s, NoiseConfig::clean());
    }

    #[test]
    fn scaling_clamps_probabilities() {
        let s = NoiseConfig::default().scaled(10_000.0);
        assert!(s.speckle_prob <= 1.0);
        assert!(s.edge_dropout_prob <= 1.0);
        assert!(s.hole_prob <= 1.0);
        assert!(s.lighting_jitter <= 120);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_panics() {
        NoiseConfig::default().scaled(-1.0);
    }
}
