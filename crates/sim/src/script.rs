//! Jump choreography: pose scripts and the root trajectory.
//!
//! A clip is a sequence of pose segments (each a pose held for a few
//! frames) whose stages advance left-to-right, plus a root (hip)
//! trajectory: feet pinned to the ground while in contact, a ballistic
//! arc while airborne.

use crate::body::BodyModel;
use crate::kinematics::{solve, JointAngles, Skeleton2D};
use crate::pose::PoseClass;
use crate::stage::JumpStage;
use rand::Rng;

/// How far a segment's first frame has progressed from the previous
/// pose toward the new one (1.0 = no residual transition ambiguity).
pub const TRANSITION_BLEND: f64 = 0.9;

/// One segment of the choreography: a pose held for `frames` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptSegment {
    /// The pose of every frame in the segment.
    pub pose: PoseClass,
    /// Segment duration in frames.
    pub frames: usize,
}

/// A full jump choreography.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JumpScript {
    segments: Vec<ScriptSegment>,
}

impl JumpScript {
    /// Builds a script from segments.
    ///
    /// # Panics
    ///
    /// Panics if the segments are empty, any segment has zero frames, or
    /// the stage sequence moves backwards (a jump cannot return to an
    /// earlier stage).
    pub fn new(segments: Vec<ScriptSegment>) -> Self {
        assert!(!segments.is_empty(), "script must contain segments");
        assert!(
            segments.iter().all(|s| s.frames > 0),
            "segments must have at least one frame"
        );
        for w in segments.windows(2) {
            assert!(
                w[0].pose.stage().index() <= w[1].pose.stage().index(),
                "stage order must be monotone: {} after {}",
                w[1].pose,
                w[0].pose
            );
        }
        JumpScript { segments }
    }

    /// The textbook-correct jump: stand, swing, crouch, drive, extend,
    /// tuck, reach, absorb, recover — 44 frames, all four stages.
    pub fn standard() -> Self {
        use PoseClass::*;
        JumpScript::new(vec![
            ScriptSegment {
                pose: StandingHandsOverlap,
                frames: 2,
            },
            // The paper's majority pose: "appears most of the time".
            ScriptSegment {
                pose: StandingHandsSwungForward,
                frames: 5,
            },
            ScriptSegment {
                pose: StandingHandsSwungBack,
                frames: 2,
            },
            ScriptSegment {
                pose: WaistBentHandsBack,
                frames: 2,
            },
            ScriptSegment {
                pose: KneesBentHandsBack,
                frames: 3,
            },
            ScriptSegment {
                pose: KneesBentHandsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffLeanForward,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffLegsDriving,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffExtendedHandsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffExtendedHandsUp,
                frames: 1,
            },
            ScriptSegment {
                pose: AirborneArmsUp,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneTuck,
                frames: 3,
            },
            ScriptSegment {
                pose: AirborneArmsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneExtendedForward,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneLegsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneDescending,
                frames: 1,
            },
            ScriptSegment {
                pose: LandingReach,
                frames: 2,
            },
            ScriptSegment {
                pose: LandingContact,
                frames: 2,
            },
            ScriptSegment {
                pose: LandingAbsorb,
                frames: 3,
            },
            ScriptSegment {
                pose: LandingRecovery,
                frames: 2,
            },
        ])
    }

    /// A jump variant that also visits the rarer poses (the paper notes
    /// some poses "appear much less frequently"): the jumper bends the
    /// waist with hands forward before take-off and overbalances on
    /// landing.
    pub fn with_rare_poses() -> Self {
        use PoseClass::*;
        JumpScript::new(vec![
            ScriptSegment {
                pose: StandingHandsOverlap,
                frames: 2,
            },
            ScriptSegment {
                pose: StandingHandsSwungForward,
                frames: 5,
            },
            ScriptSegment {
                pose: StandingHandsSwungBack,
                frames: 2,
            },
            ScriptSegment {
                pose: WaistBentHandsBack,
                frames: 2,
            },
            ScriptSegment {
                pose: KneesBentHandsBack,
                frames: 2,
            },
            ScriptSegment {
                pose: KneesBentHandsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: WaistBentHandsForward,
                frames: 1,
            },
            ScriptSegment {
                pose: TakeoffLeanForward,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffLegsDriving,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffExtendedHandsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: TakeoffExtendedHandsUp,
                frames: 1,
            },
            ScriptSegment {
                pose: AirborneArmsUp,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneTuck,
                frames: 3,
            },
            ScriptSegment {
                pose: AirborneArmsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneExtendedForward,
                frames: 1,
            },
            ScriptSegment {
                pose: AirborneLegsForward,
                frames: 2,
            },
            ScriptSegment {
                pose: AirborneDescending,
                frames: 1,
            },
            ScriptSegment {
                pose: LandingReach,
                frames: 2,
            },
            ScriptSegment {
                pose: LandingContact,
                frames: 2,
            },
            ScriptSegment {
                pose: LandingAbsorb,
                frames: 2,
            },
            ScriptSegment {
                pose: LandingRecovery,
                frames: 2,
            },
            ScriptSegment {
                pose: LandingOverbalanced,
                frames: 1,
            },
        ])
    }

    /// The segments.
    pub fn segments(&self) -> &[ScriptSegment] {
        &self.segments
    }

    /// Total frame count.
    pub fn total_frames(&self) -> usize {
        self.segments.iter().map(|s| s.frames).sum()
    }

    /// The per-frame pose sequence, expanded.
    pub fn frame_poses(&self) -> Vec<PoseClass> {
        self.segments
            .iter()
            .flat_map(|s| std::iter::repeat(s.pose).take(s.frames))
            .collect()
    }

    /// Reshapes the script to exactly `total` frames by repeatedly
    /// growing the currently shortest segment or shrinking the longest
    /// (never below one frame).
    ///
    /// # Panics
    ///
    /// Panics if `total` is smaller than the number of segments.
    pub fn with_total_frames(mut self, total: usize) -> Self {
        assert!(
            total >= self.segments.len(),
            "cannot fit {} segments into {total} frames",
            self.segments.len()
        );
        while self.total_frames() < total {
            // An empty script has zero frames; with nothing to pad,
            // stretching is impossible, so stop rather than spin.
            let Some(idx) = self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(i, s)| (s.frames, *i))
                .map(|(i, _)| i)
            else {
                break;
            };
            self.segments[idx].frames += 1;
        }
        while self.total_frames() > total {
            let Some(idx) = self
                .segments
                .iter()
                .enumerate()
                .max_by_key(|(i, s)| (s.frames, usize::MAX - *i))
                .map(|(i, _)| i)
            else {
                break;
            };
            assert!(
                self.segments[idx].frames > 1,
                "cannot shrink below one frame"
            );
            self.segments[idx].frames -= 1;
        }
        self
    }

    /// Randomly perturbs segment durations by ±1 frame (keeping each at
    /// least one frame), preserving pose order.
    pub fn jitter_durations<R: Rng>(mut self, rng: &mut R) -> Self {
        for seg in &mut self.segments {
            match rng.gen_range(0..3) {
                0 if seg.frames > 1 => seg.frames -= 1,
                1 => seg.frames += 1,
                _ => {}
            }
        }
        self
    }
}

/// Scene and trajectory parameters for [`choreograph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneParams {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Ground line (image y of the floor).
    pub ground_y: f64,
    /// Hip x position at the start.
    pub start_x: f64,
    /// Horizontal distance covered by the flight.
    pub jump_distance: f64,
    /// Extra hip rise at the apex of the flight.
    pub jump_lift: f64,
}

impl Default for SceneParams {
    fn default() -> Self {
        SceneParams {
            width: 160,
            height: 120,
            ground_y: 112.0,
            start_x: 38.0,
            jump_distance: 52.0,
            jump_lift: 14.0,
        }
    }
}

/// One fully resolved frame of a clip.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSpec {
    /// Ground-truth jump stage.
    pub stage: JumpStage,
    /// Ground-truth pose label.
    pub pose: PoseClass,
    /// The (jittered) joint angles used for rendering.
    pub angles: JointAngles,
    /// The resolved joint positions.
    pub skeleton: Skeleton2D,
}

/// Resolves a script into per-frame skeletons: pins the feet to the
/// ground while in contact, flies the hip along a parabola while
/// airborne, and adds per-frame Gaussian-ish angle jitter of
/// `angle_jitter` radians (uniform ±1.5σ approximation).
pub fn choreograph<R: Rng>(
    script: &JumpScript,
    body: &BodyModel,
    scene: &SceneParams,
    angle_jitter: f64,
    rng: &mut R,
) -> Vec<FrameSpec> {
    let poses = script.frame_poses();
    let n = poses.len();
    // Identify the airborne span.
    let airborne: Vec<bool> = poses.iter().map(|p| p.is_airborne()).collect();
    let first_air = airborne.iter().position(|&a| a);
    let last_air = airborne.iter().rposition(|&a| a);

    // Jittered angles per frame, with a half-step blend on the first
    // frame of each segment for smoother transitions.
    let jitter = |rng: &mut R| -> JointAngles {
        let mut j = JointAngles::default();
        let sample = |rng: &mut R| rng.gen_range(-1.5..1.5) * angle_jitter;
        j.torso_lean = sample(rng);
        j.shoulder = sample(rng);
        j.elbow = sample(rng);
        j.hip_front = sample(rng);
        j.knee_front = sample(rng);
        j.hip_back = sample(rng);
        j.knee_back = sample(rng);
        j
    };
    let mut angles_per_frame: Vec<JointAngles> = Vec::with_capacity(n);
    for (i, &pose) in poses.iter().enumerate() {
        let canonical = pose.canonical_angles();
        // The first frame of a segment is still part-way through the
        // transition from the previous pose.
        let blended = if i > 0 && poses[i - 1] != pose {
            poses[i - 1]
                .canonical_angles()
                .lerp(&canonical, TRANSITION_BLEND)
        } else {
            canonical
        };
        angles_per_frame.push(blended.jittered(&jitter(rng)));
    }

    // Horizontal trajectory.
    let takeoff_x = scene.start_x + 4.0;
    let landing_x = takeoff_x + scene.jump_distance;
    let x_of = |i: usize| -> f64 {
        match (first_air, last_air) {
            (Some(a), Some(b)) if i >= a && i <= b => {
                let t = (i - a) as f64 / (b - a).max(1) as f64;
                takeoff_x + t * scene.jump_distance
            }
            (Some(a), _) if i < a => {
                // Slow creep forward through the preparation.
                scene.start_x + 4.0 * (i as f64 / a.max(1) as f64)
            }
            (_, Some(b)) if i > b => landing_x,
            _ => scene.start_x,
        }
    };

    // Vertical trajectory: pin the feet on the ground, fly a parabola in
    // the air.
    let ground_hip_y = |angles: &JointAngles| -> f64 {
        let probe = solve(body, (0.0, 0.0), angles);
        scene.ground_y - probe.foot_drop()
    };
    let mut frames = Vec::with_capacity(n);
    for i in 0..n {
        let angles = angles_per_frame[i];
        let hip_y = match (first_air, last_air) {
            (Some(a), Some(b)) if i >= a && i <= b && b > a => {
                let t = (i - a) as f64 / (b - a) as f64;
                // Parabola from the take-off hip height to the landing
                // hip height, lifted by jump_lift at the apex.
                let y0 = ground_hip_y(&angles_per_frame[a.saturating_sub(1)]);
                let y1 = ground_hip_y(&angles_per_frame[(b + 1).min(n - 1)]);
                let base = y0 + (y1 - y0) * t;
                base - scene.jump_lift * 4.0 * t * (1.0 - t)
            }
            _ => ground_hip_y(&angles),
        };
        let hip = (x_of(i), hip_y);
        let skeleton = solve(body, hip, &angles);
        frames.push(FrameSpec {
            stage: poses[i].stage(),
            pose: poses[i],
            angles,
            skeleton,
        });
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn standard_script_is_44_frames_all_stages() {
        let s = JumpScript::standard();
        assert_eq!(s.total_frames(), 44);
        let stages: std::collections::HashSet<_> =
            s.frame_poses().iter().map(|p| p.stage()).collect();
        assert_eq!(stages.len(), 4);
    }

    #[test]
    fn rare_pose_script_covers_all_22_poses_with_standard() {
        let mut seen: std::collections::HashSet<PoseClass> = std::collections::HashSet::new();
        for p in JumpScript::standard().frame_poses() {
            seen.insert(p);
        }
        for p in JumpScript::with_rare_poses().frame_poses() {
            seen.insert(p);
        }
        assert_eq!(seen.len(), 22, "both scripts together visit every pose");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn backwards_stage_order_panics() {
        JumpScript::new(vec![
            ScriptSegment {
                pose: PoseClass::LandingAbsorb,
                frames: 2,
            },
            ScriptSegment {
                pose: PoseClass::AirborneTuck,
                frames: 2,
            },
        ]);
    }

    #[test]
    fn with_total_frames_hits_target_exactly() {
        for total in [20, 43, 44, 45, 60] {
            let s = JumpScript::standard().with_total_frames(total);
            assert_eq!(s.total_frames(), total);
            // Pose order must be intact.
            let mut prev = 0;
            for seg in s.segments() {
                assert!(seg.pose.stage().index() >= prev);
                prev = seg.pose.stage().index();
            }
        }
    }

    #[test]
    fn jitter_durations_keeps_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = JumpScript::standard().jitter_durations(&mut rng);
        assert_eq!(s.segments().len(), JumpScript::standard().segments().len());
        assert!(s.segments().iter().all(|seg| seg.frames >= 1));
    }

    #[test]
    fn choreograph_pins_feet_on_ground_frames() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let scene = SceneParams::default();
        let frames = choreograph(
            &JumpScript::standard(),
            &BodyModel::default(),
            &scene,
            0.0,
            &mut rng,
        );
        for f in &frames {
            if !f.pose.is_airborne() {
                let foot_y = f.skeleton.foot_front.1.max(f.skeleton.foot_back.1);
                assert!(
                    (foot_y - scene.ground_y).abs() < 1.0,
                    "{}: foot at {foot_y}, ground {}",
                    f.pose,
                    scene.ground_y
                );
            }
        }
    }

    #[test]
    fn choreograph_flight_rises_above_ground() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let scene = SceneParams::default();
        let frames = choreograph(
            &JumpScript::standard(),
            &BodyModel::default(),
            &scene,
            0.0,
            &mut rng,
        );
        // Somewhere mid-flight both feet are clearly above the ground.
        let airborne_clear = frames.iter().any(|f| {
            f.pose.is_airborne()
                && f.skeleton.foot_front.1 < scene.ground_y - 4.0
                && f.skeleton.foot_back.1 < scene.ground_y - 4.0
        });
        assert!(airborne_clear, "flight should lift the feet off the ground");
    }

    #[test]
    fn choreograph_moves_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let scene = SceneParams::default();
        let frames = choreograph(
            &JumpScript::standard(),
            &BodyModel::default(),
            &scene,
            0.0,
            &mut rng,
        );
        let first_x = frames.first().unwrap().skeleton.hip.0;
        let last_x = frames.last().unwrap().skeleton.hip.0;
        assert!(
            last_x - first_x > scene.jump_distance * 0.8,
            "jump covers ground: {first_x} -> {last_x}"
        );
        // x must be monotone non-decreasing.
        for w in frames.windows(2) {
            assert!(w[1].skeleton.hip.0 >= w[0].skeleton.hip.0 - 1e-9);
        }
    }

    #[test]
    fn choreograph_stays_in_frame() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let scene = SceneParams::default();
        for script in [JumpScript::standard(), JumpScript::with_rare_poses()] {
            let frames = choreograph(&script, &BodyModel::default(), &scene, 0.05, &mut rng);
            for f in &frames {
                for p in [
                    f.skeleton.head,
                    f.skeleton.hand,
                    f.skeleton.foot_front,
                    f.skeleton.foot_back,
                ] {
                    assert!(
                        p.0 > 2.0 && p.0 < scene.width as f64 - 2.0,
                        "{}: x={}",
                        f.pose,
                        p.0
                    );
                    assert!(
                        p.1 > 2.0 && p.1 < scene.height as f64 - 2.0,
                        "{}: y={}",
                        f.pose,
                        p.1
                    );
                }
            }
        }
    }

    #[test]
    fn choreograph_is_deterministic_per_seed() {
        let scene = SceneParams::default();
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            choreograph(
                &JumpScript::standard(),
                &BodyModel::default(),
                &scene,
                0.05,
                &mut rng,
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
