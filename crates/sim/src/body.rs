//! Jumper body proportions.

/// Segment lengths and thicknesses of the articulated jumper, in pixels.
///
/// Proportions follow a child's build (the paper studies primary-school
/// students): a relatively large head and short limbs. All lengths scale
/// linearly with [`BodyModel::scaled`] so datasets can contain jumpers of
/// different sizes.
///
/// # Examples
///
/// ```
/// use slj_sim::body::BodyModel;
///
/// let child = BodyModel::default();
/// let small = child.scaled(0.8);
/// assert!(small.torso < child.torso);
/// assert!((small.standing_height() / child.standing_height() - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyModel {
    /// Head radius.
    pub head_radius: f64,
    /// Neck length (neck joint to head centre).
    pub neck: f64,
    /// Torso length (hip to neck).
    pub torso: f64,
    /// Upper-arm length (shoulder to elbow).
    pub upper_arm: f64,
    /// Forearm length including the hand (elbow to hand tip).
    pub forearm: f64,
    /// Thigh length (hip to knee).
    pub thigh: f64,
    /// Shin length including the foot (knee to foot).
    pub shin: f64,
    /// Capsule radius of the torso.
    pub torso_thickness: f64,
    /// Capsule radius of the limbs.
    pub limb_thickness: f64,
}

impl Default for BodyModel {
    fn default() -> Self {
        BodyModel {
            head_radius: 7.0,
            neck: 3.0,
            torso: 26.0,
            upper_arm: 12.0,
            forearm: 11.0,
            thigh: 16.0,
            shin: 16.0,
            torso_thickness: 6.0,
            limb_thickness: 3.0,
        }
    }
}

impl BodyModel {
    /// Uniformly scales all proportions by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> BodyModel {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        BodyModel {
            head_radius: self.head_radius * factor,
            neck: self.neck * factor,
            torso: self.torso * factor,
            upper_arm: self.upper_arm * factor,
            forearm: self.forearm * factor,
            thigh: self.thigh * factor,
            shin: self.shin * factor,
            torso_thickness: self.torso_thickness * factor,
            limb_thickness: self.limb_thickness * factor,
        }
    }

    /// Full standing height (feet to top of head) with straight joints.
    pub fn standing_height(&self) -> f64 {
        self.thigh + self.shin + self.torso + self.neck + 2.0 * self.head_radius
    }

    /// Full leg length with straight joints.
    pub fn leg_length(&self) -> f64 {
        self.thigh + self.shin
    }

    /// Full arm length with straight joints.
    pub fn arm_length(&self) -> f64 {
        self.upper_arm + self.forearm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_proportions_are_childlike() {
        let b = BodyModel::default();
        // A child's head is roughly 1/6 of standing height.
        let ratio = 2.0 * b.head_radius / b.standing_height();
        assert!(ratio > 0.15 && ratio < 0.25, "head ratio {ratio}");
        // Legs shorter than torso+head (childlike, not adult).
        assert!(b.leg_length() < b.torso + b.neck + 2.0 * b.head_radius);
    }

    #[test]
    fn scaling_is_linear() {
        let b = BodyModel::default();
        let s = b.scaled(2.0);
        assert_eq!(s.torso, b.torso * 2.0);
        assert_eq!(s.limb_thickness, b.limb_thickness * 2.0);
        assert!((s.standing_height() - 2.0 * b.standing_height()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        BodyModel::default().scaled(0.0);
    }

    #[test]
    fn composite_lengths() {
        let b = BodyModel::default();
        assert_eq!(b.leg_length(), b.thigh + b.shin);
        assert_eq!(b.arm_length(), b.upper_arm + b.forearm);
    }
}
