//! Monotonic time measurement — the one place the workspace reads a
//! wall clock.
//!
//! The repo's determinism contract says results must never depend on
//! timing, and the `determinism/no-wall-clock` rule of `slj-check`
//! enforces it mechanically: `Instant::now`/`SystemTime` are banned
//! outside this crate and the CLI. Instrumented layers (the engine's
//! stage timings, the DBN filter's inference metrics, the banded imaging
//! kernels) therefore time themselves through [`Stopwatch`], keeping
//! every clock read behind an interface the auditor can see.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A started monotonic timer.
///
/// # Examples
///
/// ```
/// use slj_obs::Stopwatch;
///
/// let watch = Stopwatch::start();
/// let elapsed = watch.elapsed();
/// assert!(watch.elapsed_ns() >= elapsed.as_nanos() as u64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Reads the monotonic clock and starts timing.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            // slj-check: allow(determinism/wall-clock-reachable) — Stopwatch timings feed metrics and stage timings only, never model results
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// An injectable nanosecond clock.
///
/// Production code holds a [`Clock::monotonic`] (backed by [`Instant`],
/// the only wall-clock read point the `determinism/no-wall-clock` rule
/// permits); tests hold a [`Clock::manual`] and step time forward
/// explicitly, so time-dependent behaviour — idle-session reaping,
/// deadline expiry — is unit-testable without sleeping.
///
/// Cloning a manual clock shares its counter: advancing any clone
/// advances them all.
///
/// # Examples
///
/// ```
/// use slj_obs::Clock;
///
/// let clock = Clock::manual();
/// assert_eq!(clock.now_ns(), 0);
/// clock.advance(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
///
/// let wall = Clock::monotonic();
/// assert!(wall.now_ns() <= wall.now_ns());
/// ```
#[derive(Debug, Clone)]
pub struct Clock {
    inner: ClockInner,
}

#[derive(Debug, Clone)]
enum ClockInner {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A real clock: nanoseconds since this call, monotonic.
    #[must_use]
    pub fn monotonic() -> Self {
        Clock {
            // slj-check: allow(determinism/wall-clock-reachable) — observability clock; timestamps feed traces and metrics only, never model results
            inner: ClockInner::Monotonic(Instant::now()),
        }
    }

    /// A test clock that starts at zero and only moves via [`Clock::advance`].
    #[must_use]
    pub fn manual() -> Self {
        Clock {
            inner: ClockInner::Manual(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Nanoseconds since the clock's epoch (construction for monotonic
    /// clocks, zero for manual ones).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            ClockInner::Monotonic(epoch) => {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            ClockInner::Manual(ns) => ns.load(Ordering::SeqCst),
        }
    }

    /// Steps a manual clock forward by `ns`. No-op on a monotonic clock
    /// (real time cannot be steered).
    pub fn advance(&self, ns: u64) {
        if let ClockInner::Manual(counter) = &self.inner {
            counter.fetch_add(ns, Ordering::SeqCst);
        }
    }

    /// `true` for clocks created with [`Clock::manual`].
    #[must_use]
    pub fn is_manual(&self) -> bool {
        matches!(self.inner, ClockInner::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let watch = Stopwatch::start();
        let a = watch.elapsed();
        let b = watch.elapsed();
        assert!(b >= a);
        assert!(watch.elapsed_ns() >= b.as_nanos() as u64);
    }

    #[test]
    fn stopwatch_is_copy_and_debug() {
        let watch = Stopwatch::start();
        let copy = watch;
        assert!(format!("{copy:?}").contains("Stopwatch"));
        assert!(watch.elapsed() <= copy.elapsed().max(watch.elapsed()));
    }

    #[test]
    fn manual_clock_clones_share_the_counter() {
        let clock = Clock::manual();
        let clone = clock.clone();
        clock.advance(10);
        clone.advance(5);
        assert_eq!(clock.now_ns(), 15);
        assert_eq!(clone.now_ns(), 15);
        assert!(clock.is_manual());
    }

    #[test]
    fn monotonic_clock_ignores_advance_and_moves_forward() {
        let clock = Clock::monotonic();
        let before = clock.now_ns();
        clock.advance(1_000_000_000);
        let after = clock.now_ns();
        // `advance` must not have jumped us a second into the future.
        assert!(after < before + 1_000_000_000);
        assert!(after >= before);
        assert!(!clock.is_manual());
        assert!(!Clock::default().is_manual());
    }
}
