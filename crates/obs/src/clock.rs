//! Monotonic time measurement — the one place the workspace reads a
//! wall clock.
//!
//! The repo's determinism contract says results must never depend on
//! timing, and the `determinism/no-wall-clock` rule of `slj-check`
//! enforces it mechanically: `Instant::now`/`SystemTime` are banned
//! outside this crate and the CLI. Instrumented layers (the engine's
//! stage timings, the DBN filter's inference metrics, the banded imaging
//! kernels) therefore time themselves through [`Stopwatch`], keeping
//! every clock read behind an interface the auditor can see.

use std::time::{Duration, Instant};

/// A started monotonic timer.
///
/// # Examples
///
/// ```
/// use slj_obs::Stopwatch;
///
/// let watch = Stopwatch::start();
/// let elapsed = watch.elapsed();
/// assert!(watch.elapsed_ns() >= elapsed.as_nanos() as u64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Reads the monotonic clock and starts timing.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let watch = Stopwatch::start();
        let a = watch.elapsed();
        let b = watch.elapsed();
        assert!(b >= a);
        assert!(watch.elapsed_ns() >= b.as_nanos() as u64);
    }

    #[test]
    fn stopwatch_is_copy_and_debug() {
        let watch = Stopwatch::start();
        let copy = watch;
        assert!(format!("{copy:?}").contains("Stopwatch"));
        assert!(watch.elapsed() <= copy.elapsed().max(watch.elapsed()));
    }
}
