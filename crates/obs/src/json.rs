//! A minimal hand-rolled JSON writer.
//!
//! The repository deliberately has no serde dependency; every JSON
//! artefact (bench baselines, metrics snapshots, JSONL trace records) is
//! emitted through this writer so escaping and number formatting are
//! implemented exactly once.

use std::fmt::Write as _;

/// Streaming JSON builder over an owned `String`.
///
/// Commas are inserted automatically; the caller is responsible for
/// balancing `begin_*`/`end_*` calls (debug assertions catch mismatches).
///
/// # Examples
///
/// ```
/// use slj_obs::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("schema");
/// w.u64(3);
/// w.key("name");
/// w.string("slj");
/// w.key("values");
/// w.begin_array();
/// w.f64(0.5);
/// w.f64(1.0);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"schema":3,"name":"slj","values":[0.5,1]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: the number of items written so far.
    stack: Vec<usize>,
    /// A key was just written; the next value belongs to it.
    pending_value: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Consumes the writer and returns the JSON text.
    ///
    /// # Panics
    ///
    /// Debug-panics when containers are still open.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced JSON containers");
        debug_assert!(!self.pending_value, "key written without a value");
        self.out
    }

    fn before_value(&mut self) {
        if self.pending_value {
            self.pending_value = false;
            return;
        }
        if let Some(count) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(0);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(popped.is_some(), "end_object with no object");
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(0);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(popped.is_some(), "end_array with no array");
        self.out.push(']');
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, key: &str) {
        debug_assert!(!self.pending_value, "two keys in a row");
        if let Some(count) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
        }
        self.write_escaped(key);
        self.out.push(':');
        self.pending_value = true;
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, value: &str) {
        self.before_value();
        self.write_escaped(value);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, value: u64) {
        self.before_value();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, value: i64) {
        self.before_value();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a float value. Non-finite values render as `null` (JSON has
    /// no NaN/Infinity).
    pub fn f64(&mut self, value: f64) {
        self.before_value();
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.u64(1);
        w.begin_object();
        w.key("b");
        w.bool(false);
        w.end_object();
        w.null();
        w.end_array();
        w.key("c");
        w.i64(-5);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[1,{"b":false},null],"c":-5}"#);
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\te\u{01}f");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(0.25);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,0.25]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("empty_obj");
        w.begin_object();
        w.end_object();
        w.key("empty_arr");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"empty_obj":{},"empty_arr":[]}"#);
    }
}
