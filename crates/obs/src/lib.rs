//! Observability substrate for the standing-long-jump system.
//!
//! The pipeline makes silent per-frame decisions — `Th_Pose` rejections
//! to Unknown, carry-forward of the last recognised pose, jumping-stage
//! transitions — and the multi-core runtime schedules work invisibly.
//! This crate is the measurement substrate both need, with **zero
//! dependencies** and two deliberate design rules:
//!
//! 1. **Zero cost when disabled.** A [`Tracer`] without a sink and a
//!    detached metric handle do nothing: no event is constructed, no
//!    timestamp is read, no allocation happens on the steady-state path.
//!    Instrumented code guards with [`Tracer::enabled`] / `Option` checks
//!    that compile down to a branch.
//! 2. **Deterministic output.** [`Registry::snapshot_json`] renders
//!    metrics sorted by name; histogram quantiles are computed from fixed
//!    power-of-two buckets with deterministic interpolation, so two runs
//!    over the same events serialise identically (timestamps aside).
//!
//! The pieces:
//!
//! - [`Tracer`] / [`Span`] / [`Event`] — a lightweight span/event tracer
//!   with monotonic nanosecond timestamps and a pluggable [`TraceSink`]
//!   (the bundled [`RingSink`] keeps the last N events in a ring buffer).
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free atomic metric
//!   handles, cheaply clonable (`Arc` inside), shared across threads.
//! - [`Registry`] — get-or-create metrics by name; one registry per
//!   run/session aggregates every layer (engine stages, DBN filter,
//!   worker pool, imaging kernels) into one JSON snapshot.
//! - [`JsonWriter`] — the hand-rolled JSON writer behind snapshots, the
//!   per-frame JSONL trace records, and `slj bench` baselines.
//! - [`SpanTimings`] — named wall-clock durations of one pass (the
//!   engine's per-stage timing vector), reused across passes so the
//!   steady state allocates nothing.
//!
//! # Examples
//!
//! ```
//! use slj_obs::{Registry, Tracer, Value};
//!
//! let registry = Registry::new();
//! let frames = registry.counter("engine.frames");
//! let latency = registry.histogram("engine.frame.total_ns");
//! frames.inc();
//! latency.record(1_200_000);
//! assert!(registry.snapshot_json().contains("\"engine.frames\""));
//!
//! let (tracer, ring) = Tracer::ring(64);
//! tracer.event("frame.decision", &[("frame", Value::U64(0)), ("accepted", Value::Bool(true))]);
//! assert_eq!(ring.drain().len(), 1);
//! ```

// Non-test code is unwrap/expect-free (lock poisoning is recovered, not
// propagated); tests may still assert with unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod clock;
mod json;
mod metrics;
mod trace;

pub use clock::{Clock, Stopwatch};

/// Locks `mutex`, recovering the data if a panicking thread poisoned it.
/// Every guarded structure here (metric registry, trace ring) stays
/// well-formed mid-update, so recovery is safe — and observability must
/// never take the pipeline down with a poisoned-lock panic.
pub(crate) fn lock_unpoisoned<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
pub use json::JsonWriter;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{Event, RingSink, Span, SpanTimings, TraceSink, Tracer, Value};
