//! Counters, gauges, fixed-bucket histograms, and the named registry.
//!
//! Every handle is an `Arc` around atomics: cloning is cheap, recording
//! is lock-free, and the same handle can be shared across worker
//! threads. The [`Registry`] is the aggregation point — one per
//! run/session — and renders a deterministic JSON snapshot (metrics
//! sorted by name) through the crate's [`JsonWriter`].

use crate::json::JsonWriter;
use crate::lock_unpoisoned;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Schema version of the registry's JSON snapshot (`"schema"` key in
/// [`Registry::snapshot_json`]).
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, detached counter (not in any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed value (queue depths, band counts, config knobs).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, detached gauge (not in any registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a signed delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets (bucket `i` holds values in
/// `(2^(i-1), 2^i]`, bucket 0 holds `0..=1`), plus one overflow bucket.
const BUCKETS: usize = 40;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram over `u64` samples (nanoseconds, cell
/// counts, band counts — anything non-negative).
///
/// Buckets are powers of two spanning `1 ..= 2^39` (~9 minutes in
/// nanoseconds) with an overflow bucket above; quantiles interpolate
/// geometrically inside the hit bucket and clamp to the observed
/// min/max, so estimates are deterministic for a given sample multiset.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh, detached histogram (not in any registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            return 0;
        }
        // ceil(log2(value)): bucket i covers (2^(i-1), 2^i].
        let idx = (64 - (value - 1).leading_zeros()) as usize;
        idx.min(BUCKETS)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.min.load(Ordering::Relaxed))
        }
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.max.load(Ordering::Relaxed))
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), 0 when empty.
    ///
    /// Walks the bucket counts to the target rank and interpolates
    /// geometrically inside the hit bucket, clamped to the observed
    /// min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        let mut estimate = self.0.max.load(Ordering::Relaxed) as f64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = if i == 0 {
                    (0.0, 1.0)
                } else if i >= BUCKETS {
                    let lo = (1u64 << (BUCKETS - 1)) as f64 * 2.0;
                    (lo, self.0.max.load(Ordering::Relaxed) as f64)
                } else {
                    ((1u64 << (i - 1)) as f64, (1u64 << i) as f64)
                };
                let frac = (rank - cum) as f64 / c as f64;
                estimate = lo + (hi - lo) * frac;
                break;
            }
            cum += c;
        }
        let min = self.0.min.load(Ordering::Relaxed) as f64;
        let max = self.0.max.load(Ordering::Relaxed) as f64;
        estimate.clamp(min, max)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("type");
        w.string("histogram");
        w.key("count");
        w.u64(self.count());
        w.key("sum");
        w.u64(self.sum());
        w.key("min");
        w.u64(self.min().unwrap_or(0));
        w.key("max");
        w.u64(self.max().unwrap_or(0));
        w.key("mean");
        w.f64(self.mean());
        w.key("p50");
        w.f64(self.quantile(0.50));
        w.key("p95");
        w.f64(self.quantile(0.95));
        w.key("p99");
        w.f64(self.quantile(0.99));
        w.end_object();
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics, shared by every instrumented layer of
/// one run or session.
///
/// Handles are get-or-create by name: the first caller determines the
/// metric's kind; a later request for the same name with a different
/// kind receives a fresh *detached* handle (recorded values go nowhere)
/// rather than panicking — observability must never take the pipeline
/// down.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock_unpoisoned(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock_unpoisoned(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock_unpoisoned(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every metric as one JSON object, sorted by name:
    ///
    /// ```json
    /// {"schema": 1, "metrics": {"name": {"type": "counter", "value": 3}, ...}}
    /// ```
    pub fn snapshot_json(&self) -> String {
        let map = lock_unpoisoned(&self.inner).clone();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(METRICS_SCHEMA_VERSION);
        w.key("metrics");
        w.begin_object();
        for (name, metric) in &map {
            w.key(name);
            match metric {
                Metric::Counter(c) => {
                    w.begin_object();
                    w.key("type");
                    w.string("counter");
                    w.key("value");
                    w.u64(c.get());
                    w.end_object();
                }
                Metric::Gauge(g) => {
                    w.begin_object();
                    w.key("type");
                    w.string("gauge");
                    w.key("value");
                    w.i64(g.get());
                    w.end_object();
                }
                Metric::Histogram(h) => h.write_json(&mut w),
            }
        }
        w.end_object();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("jobs").get(), 5, "handles share state");
        let g = reg.gauge("depth");
        g.set(-3);
        g.add(1);
        assert_eq!(reg.gauge("depth").get(), -2);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 20);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 220.0).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((10.0..=40.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 100.0, "p99 = {p99}");
        assert!(p99 <= 1000.0, "p99 clamped to max, got {p99}");
        // Empty histogram is all zeros.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 7 + 1);
        }
        let mut last = 0.0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let e = h.quantile(q);
            assert!(e >= last, "quantile({q}) = {e} < {last}");
            last = e;
        }
    }

    #[test]
    fn histogram_is_shared_across_clones_and_threads() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.record(42);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4000 * 42);
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let reg = Registry::new();
        reg.counter("x").add(7);
        let h = reg.histogram("x"); // wrong kind: detached
        h.record(99);
        assert_eq!(reg.counter("x").get(), 7, "original survives");
        assert_eq!(reg.len(), 1);
        assert!(reg.snapshot_json().contains("\"counter\""));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.histogram("b.lat").record(3);
        reg.counter("a.count").inc();
        reg.gauge("c.depth").set(2);
        let json = reg.snapshot_json();
        let a = json.find("\"a.count\"").unwrap();
        let b = json.find("\"b.lat\"").unwrap();
        let c = json.find("\"c.depth\"").unwrap();
        assert!(a < b && b < c, "not sorted: {json}");
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains("\"p95\""));
        assert!(json.ends_with("}\n"));
    }
}
