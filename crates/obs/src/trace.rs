//! Span/event tracer with pluggable sinks.
//!
//! A [`Tracer`] without a sink is the *disabled* tracer: [`Tracer::event`]
//! returns before constructing anything and [`Tracer::span`] hands back an
//! inert guard, so instrumentation left in hot loops costs one branch.
//! With a sink attached (the bundled [`RingSink`], or anything
//! implementing [`TraceSink`]) every event carries a monotonic nanosecond
//! timestamp relative to the tracer's epoch.

use crate::lock_unpoisoned;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A field value attached to an [`Event`].
///
/// `Copy` on purpose: field slices are borrowed at the call site and only
/// copied into an owned `Vec` once the tracer is known to be enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, nanoseconds, frame indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (posteriors, margins).
    F64(f64),
    /// Boolean flag (accepted, carry-forward).
    Bool(bool),
    /// Static string (pose names, Unknown reasons).
    Str(&'static str),
}

impl Value {
    fn write_json(&self, w: &mut crate::JsonWriter) {
        match *self {
            Value::U64(v) => w.u64(v),
            Value::I64(v) => w.i64(v),
            Value::F64(v) => w.f64(v),
            Value::Bool(v) => w.bool(v),
            Value::Str(v) => w.string(v),
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic nanoseconds since the owning tracer's epoch.
    pub ts_ns: u64,
    /// Event name (static so hot paths never allocate for it).
    pub name: &'static str,
    /// Named field values.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The value of the field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = crate::JsonWriter::new();
        w.begin_object();
        w.key("ts_ns");
        w.u64(self.ts_ns);
        w.key("name");
        w.string(self.name);
        for (k, v) in &self.fields {
            w.key(k);
            v.write_json(&mut w);
        }
        w.end_object();
        w.finish()
    }
}

/// Destination for recorded events.
///
/// Implementations must be cheap and non-blocking-ish: sinks are called
/// from the pipeline's hot path whenever tracing is enabled.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Accepts one event.
    fn record(&self, event: Event);
}

/// Bounded in-memory sink keeping the most recent `capacity` events.
///
/// When full, the oldest event is dropped and [`RingSink::dropped`]
/// counts the loss, so post-hoc analysis can tell a quiet run from a
/// truncated one.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        lock_unpoisoned(&self.events).drain(..).collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.events).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: Event) {
        let mut events = lock_unpoisoned(&self.events);
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

/// Entry point for emitting spans and events.
///
/// Cloning shares the sink and epoch. The default tracer is disabled.
#[derive(Debug, Clone)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer with no sink: every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer {
            sink: None,
            // slj-check: allow(determinism/wall-clock-reachable) — trace timestamps are diagnostics only, never model results
            epoch: Instant::now(),
        }
    }

    /// A tracer writing into `sink`.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            sink: Some(sink),
            // slj-check: allow(determinism/wall-clock-reachable) — trace timestamps are diagnostics only, never model results
            epoch: Instant::now(),
        }
    }

    /// Convenience: a tracer backed by a fresh [`RingSink`], returning
    /// both so the caller can drain the ring later.
    pub fn ring(capacity: usize) -> (Self, Arc<RingSink>) {
        let ring = Arc::new(RingSink::new(capacity));
        (Tracer::with_sink(ring.clone()), ring)
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Monotonic nanoseconds since this tracer was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records an event with the given fields.
    ///
    /// When disabled this returns immediately: the field slice is never
    /// copied, no timestamp is read, nothing allocates.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let Some(sink) = &self.sink else { return };
        sink.record(Event {
            ts_ns: self.now_ns(),
            name,
            fields: fields.to_vec(),
        });
    }

    /// Starts a span; its wall-clock duration is recorded as an event
    /// named `name` with an `elapsed_ns` field when the guard drops.
    ///
    /// Inert (no clock read, no event) when the tracer is disabled.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: if self.enabled() { Some(self) } else { None },
            name,
            start: if self.enabled() {
                // slj-check: allow(determinism/wall-clock-reachable) — trace timestamps are diagnostics only, never model results
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

/// Drop guard produced by [`Tracer::span`].
#[derive(Debug)]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Elapsed time since the span started (zero when disabled).
    pub fn elapsed(&self) -> Duration {
        self.start.map(|s| s.elapsed()).unwrap_or_default()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let (Some(tracer), Some(start)) = (self.tracer, self.start) else {
            return;
        };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        tracer.event(self.name, &[("elapsed_ns", Value::U64(elapsed))]);
    }
}

/// Named wall-clock durations for one pass over a unit of work (e.g. the
/// engine's per-stage timings for one frame).
///
/// The entry vector is reused across passes via [`SpanTimings::clear`],
/// so a steady-state loop performs no allocations once the stage set has
/// been seen once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTimings {
    entries: Vec<(&'static str, Duration)>,
}

impl SpanTimings {
    /// Creates an empty timing set.
    pub fn new() -> Self {
        SpanTimings::default()
    }

    /// Forgets all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends a named duration.
    pub fn push(&mut self, name: &'static str, elapsed: Duration) {
        self.entries.push((name, elapsed));
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.entries.iter().copied()
    }

    /// The duration recorded for `name`, if any.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, d)| d)
    }

    /// Sum of all entries.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|&(_, d)| d).sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.event("x", &[("a", Value::U64(1))]);
        let span = tracer.span("y");
        assert_eq!(span.elapsed(), Duration::ZERO);
        drop(span);
        // Nothing observable happened; also Default is disabled.
        assert!(!Tracer::default().enabled());
    }

    #[test]
    fn ring_sink_buffers_and_drops_oldest() {
        let (tracer, ring) = Tracer::ring(2);
        assert!(tracer.enabled());
        tracer.event("a", &[]);
        tracer.event("b", &[("k", Value::Bool(true))]);
        tracer.event("c", &[]);
        assert_eq!(ring.dropped(), 1);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "b");
        assert_eq!(events[1].name, "c");
        assert_eq!(events[0].field("k"), Some(Value::Bool(true)));
        assert!(ring.is_empty());
        // Timestamps are monotone.
        assert!(events[0].ts_ns <= events[1].ts_ns);
    }

    #[test]
    fn span_emits_elapsed_event_on_drop() {
        let (tracer, ring) = Tracer::ring(8);
        {
            let _span = tracer.span("work");
            std::thread::sleep(Duration::from_millis(1));
        }
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        match events[0].field("elapsed_ns") {
            Some(Value::U64(ns)) => assert!(ns >= 1_000_000, "elapsed {ns} ns"),
            other => panic!("missing elapsed_ns: {other:?}"),
        }
    }

    #[test]
    fn event_serialises_to_one_json_object() {
        let event = Event {
            ts_ns: 42,
            name: "frame.decision",
            fields: vec![
                ("frame", Value::U64(3)),
                ("margin", Value::F64(-0.125)),
                ("pose", Value::Str("Squat")),
                ("carry_forward", Value::Bool(false)),
                ("delta", Value::I64(-2)),
            ],
        };
        assert_eq!(
            event.to_json(),
            r#"{"ts_ns":42,"name":"frame.decision","frame":3,"margin":-0.125,"pose":"Squat","carry_forward":false,"delta":-2}"#
        );
    }

    #[test]
    fn span_timings_reuse_allocation() {
        let mut t = SpanTimings::new();
        t.push("a", Duration::from_nanos(10));
        t.push("b", Duration::from_nanos(30));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("b"), Some(Duration::from_nanos(30)));
        assert_eq!(t.get("z"), None);
        assert_eq!(t.total(), Duration::from_nanos(40));
        let cap = t.entries.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.entries.capacity(), cap, "clear keeps the allocation");
    }

    #[test]
    fn tracer_clone_shares_sink() {
        let (tracer, ring) = Tracer::ring(4);
        let clone = tracer.clone();
        clone.event("from-clone", &[]);
        assert_eq!(ring.len(), 1);
    }
}
