//! The versioned `slj-quality v1` threshold artifact.
//!
//! Quality thresholds are deployment policy, not code: how many
//! below-threshold frames constitute a "run", how much frame-to-frame
//! motion is plausible, how hard each reason penalises the clip score.
//! Like the `slj-taxonomy` artifact, the config is a line-oriented text
//! file with a magic first line, so it diffs cleanly, round-trips
//! exactly, and can be audited by eye:
//!
//! ```text
//! slj-quality v1
//! profile default
//! margin_floor 0
//! low_run 4
//! ...
//! weight temporal_jump 2
//! ```
//!
//! [`QualityConfig::parse`] validates every field (runs are at least 1,
//! fractions sit in range, weights are non-negative) so a bad artifact is
//! rejected at load time, not discovered as a nonsense score later.

use crate::{QualityError, Reason};

/// Magic first line of the artifact.
pub const QUALITY_MAGIC: &str = "slj-quality v1";

/// Thresholds and score weights for the quality analyzer.
///
/// `Default` is the shipped profile, tuned so clean simulator clips
/// carry zero flags (the CI gate depends on that).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityConfig {
    /// Profile name, for provenance in reports.
    pub profile: String,
    /// A frame is low-confidence when its `Th_Pose` margin
    /// (`best_prob - threshold`) is below this floor.
    pub margin_floor: f64,
    /// Consecutive low-confidence frames before the run is flagged.
    pub low_run: usize,
    /// Consecutive carry-forward frames before the run is flagged.
    pub carry_run: usize,
    /// Consecutive empty silhouettes before the run is flagged.
    pub empty_run: usize,
    /// Max plausible per-frame key-point-centroid motion, as a fraction
    /// of the frame diagonal.
    pub max_centroid_jump: f64,
    /// Max plausible per-frame motion of any single key point, as a
    /// fraction of the frame diagonal.
    pub max_part_jump: f64,
    /// Foreground fraction above this is a silhouette spike (lighting
    /// drift bleeding the background into the foreground).
    pub max_foreground: f64,
    /// Frame-over-frame foreground growth (or shrinkage, reciprocal)
    /// beyond this ratio is a spike.
    pub spike_ratio: f64,
    /// Max plausible distance between any two key points, as a fraction
    /// of the frame diagonal.
    pub max_part_span: f64,
    /// Head may sit below the foot by at most this fraction of the frame
    /// diagonal before it counts as a skeleton inversion.
    pub max_inversion: f64,
    /// Posterior spread across the model ensemble above this flags the
    /// frame.
    pub ensemble_divergence: f64,
    /// Per-reason score penalty weights, indexed by [`Reason`] order.
    /// The clip score is `1 - Σ weight(r) · flagged_frames(r)/frames`,
    /// clamped to `[0, 1]`.
    pub weights: [f64; Reason::ALL.len()],
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            profile: "default".to_string(),
            margin_floor: 0.0,
            low_run: 4,
            carry_run: 4,
            empty_run: 2,
            max_centroid_jump: 0.2,
            max_part_jump: 0.35,
            max_foreground: 0.4,
            spike_ratio: 2.0,
            max_part_span: 0.95,
            max_inversion: 0.02,
            ensemble_divergence: 0.35,
            weights: [2.0; Reason::ALL.len()],
        }
    }
}

impl QualityConfig {
    /// Weight applied to `reason` in the clip score.
    pub fn weight(&self, reason: Reason) -> f64 {
        self.weights[reason as usize]
    }

    /// Serialises the config as an `slj-quality v1` artifact. Exact
    /// round trip: `parse(serialize(c)) == c`.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(QUALITY_MAGIC);
        out.push('\n');
        out.push_str(&format!("profile {}\n", self.profile));
        out.push_str(&format!("margin_floor {}\n", self.margin_floor));
        out.push_str(&format!("low_run {}\n", self.low_run));
        out.push_str(&format!("carry_run {}\n", self.carry_run));
        out.push_str(&format!("empty_run {}\n", self.empty_run));
        out.push_str(&format!("max_centroid_jump {}\n", self.max_centroid_jump));
        out.push_str(&format!("max_part_jump {}\n", self.max_part_jump));
        out.push_str(&format!("max_foreground {}\n", self.max_foreground));
        out.push_str(&format!("spike_ratio {}\n", self.spike_ratio));
        out.push_str(&format!("max_part_span {}\n", self.max_part_span));
        out.push_str(&format!("max_inversion {}\n", self.max_inversion));
        out.push_str(&format!(
            "ensemble_divergence {}\n",
            self.ensemble_divergence
        ));
        for reason in Reason::ALL {
            out.push_str(&format!(
                "weight {} {}\n",
                reason.code(),
                self.weight(reason)
            ));
        }
        out
    }

    /// Parses and validates an `slj-quality v1` artifact.
    pub fn parse(text: &str) -> Result<QualityConfig, QualityError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == QUALITY_MAGIC => {}
            Some((_, first)) => {
                return Err(QualityError::Format {
                    line: 1,
                    message: format!("expected magic '{QUALITY_MAGIC}', found '{first}'"),
                })
            }
            None => {
                return Err(QualityError::Format {
                    line: 0,
                    message: "empty artifact".to_string(),
                })
            }
        }

        let mut config = QualityConfig::default();
        let mut seen: Vec<String> = Vec::new();
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or_default();
            let err = |message: String| QualityError::Format {
                line: line_no,
                message,
            };
            let mut value = || -> Result<&str, QualityError> {
                parts
                    .next()
                    .ok_or_else(|| err(format!("'{key}' is missing a value")))
            };
            match key {
                "profile" => {
                    config.profile = value()?.to_string();
                    seen.push(key.to_string());
                }
                "weight" => {
                    let code = value()?;
                    let reason = Reason::from_code(code)
                        .ok_or_else(|| err(format!("unknown reason code '{code}'")))?;
                    config.weights[reason as usize] = parse_f64(key, value()?, line_no)?;
                    seen.push(format!("weight {code}"));
                }
                "low_run" | "carry_run" | "empty_run" => {
                    let v = parse_usize(key, value()?, line_no)?;
                    match key {
                        "low_run" => config.low_run = v,
                        "carry_run" => config.carry_run = v,
                        _ => config.empty_run = v,
                    }
                    seen.push(key.to_string());
                }
                "margin_floor"
                | "max_centroid_jump"
                | "max_part_jump"
                | "max_foreground"
                | "spike_ratio"
                | "max_part_span"
                | "max_inversion"
                | "ensemble_divergence" => {
                    let v = parse_f64(key, value()?, line_no)?;
                    match key {
                        "margin_floor" => config.margin_floor = v,
                        "max_centroid_jump" => config.max_centroid_jump = v,
                        "max_part_jump" => config.max_part_jump = v,
                        "max_foreground" => config.max_foreground = v,
                        "spike_ratio" => config.spike_ratio = v,
                        "max_part_span" => config.max_part_span = v,
                        "max_inversion" => config.max_inversion = v,
                        _ => config.ensemble_divergence = v,
                    }
                    seen.push(key.to_string());
                }
                other => return Err(err(format!("unknown key '{other}'"))),
            }
            if parts.next().is_some() {
                return Err(QualityError::Format {
                    line: line_no,
                    message: format!("trailing tokens after '{key}'"),
                });
            }
        }

        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != seen.len() {
            return Err(QualityError::Format {
                line: 0,
                message: "duplicate key".to_string(),
            });
        }
        config.validate()?;
        Ok(config)
    }

    /// Range checks shared by [`QualityConfig::parse`] and direct
    /// construction.
    pub fn validate(&self) -> Result<(), QualityError> {
        let fail = |message: String| Err(QualityError::Format { line: 0, message });
        if self.low_run == 0 || self.carry_run == 0 || self.empty_run == 0 {
            return fail("run lengths must be at least 1".to_string());
        }
        for (name, v) in [
            ("max_centroid_jump", self.max_centroid_jump),
            ("max_part_jump", self.max_part_jump),
            ("max_foreground", self.max_foreground),
            ("max_part_span", self.max_part_span),
            ("max_inversion", self.max_inversion),
            ("ensemble_divergence", self.ensemble_divergence),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return fail(format!("{name} must be in (0, 1], found {v}"));
            }
        }
        if !(self.spike_ratio > 1.0) {
            return fail(format!(
                "spike_ratio must be greater than 1, found {}",
                self.spike_ratio
            ));
        }
        if !self.margin_floor.is_finite() {
            return fail("margin_floor must be finite".to_string());
        }
        for (reason, w) in Reason::ALL.iter().zip(self.weights) {
            if !(w.is_finite() && w >= 0.0) {
                return fail(format!("weight {} must be non-negative, found {w}", reason));
            }
        }
        Ok(())
    }
}

fn parse_f64(key: &str, value: &str, line: usize) -> Result<f64, QualityError> {
    value.parse::<f64>().map_err(|_| QualityError::Format {
        line,
        message: format!("'{key}' expects a number, found '{value}'"),
    })
}

fn parse_usize(key: &str, value: &str, line: usize) -> Result<usize, QualityError> {
    value.parse::<usize>().map_err(|_| QualityError::Format {
        line,
        message: format!("'{key}' expects a non-negative integer, found '{value}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let config = QualityConfig::default();
        let text = config.serialize();
        assert!(text.starts_with("slj-quality v1\n"));
        let back = QualityConfig::parse(&text).expect("parse");
        assert_eq!(back, config);
    }

    #[test]
    fn custom_values_round_trip() {
        let mut config = QualityConfig {
            profile: "strict".to_string(),
            margin_floor: 0.015,
            low_run: 2,
            max_centroid_jump: 0.125,
            ..QualityConfig::default()
        };
        config.weights[Reason::TemporalJump as usize] = 3.5;
        let back = QualityConfig::parse(&config.serialize()).expect("parse");
        assert_eq!(back, config);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = QualityConfig::parse("slj-quality v9\n").expect_err("magic");
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_unknown_key() {
        let text = format!("{QUALITY_MAGIC}\nbogus 1\n");
        let err = QualityConfig::parse(&text).expect_err("unknown key");
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_unknown_reason_code() {
        let text = format!("{QUALITY_MAGIC}\nweight nope 2\n");
        let err = QualityConfig::parse(&text).expect_err("unknown reason");
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn rejects_out_of_range_values() {
        for bad in [
            "low_run 0",
            "max_foreground 1.5",
            "spike_ratio 0.9",
            "weight temporal_jump -1",
            "max_centroid_jump 0",
        ] {
            let text = format!("{QUALITY_MAGIC}\n{bad}\n");
            assert!(QualityConfig::parse(&text).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_duplicates_and_trailing_tokens() {
        let text = format!("{QUALITY_MAGIC}\nlow_run 2\nlow_run 3\n");
        assert!(QualityConfig::parse(&text).is_err());
        let text = format!("{QUALITY_MAGIC}\nlow_run 2 3\n");
        assert!(QualityConfig::parse(&text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{QUALITY_MAGIC}\n\n# tuned for lab captures\nlow_run 2\n");
        let config = QualityConfig::parse(&text).expect("parse");
        assert_eq!(config.low_run, 2);
    }
}
