//! Ensemble variance: disagreement across independently trained models.
//!
//! When several model files are supplied, each one filters the same clip
//! and produces a per-frame posterior over poses. Frames where the
//! ensemble agrees are trustworthy even if any single posterior is
//! modest; frames where the models *diverge* are exactly where a single
//! model's confidence is least meaningful. The spread statistic here is
//! the largest per-pose disagreement — `max_i (max_k p_k[i] − min_k
//! p_k[i])` over poses `i` and models `k` — which is `0` for perfect
//! agreement and approaches `1` when two models put full mass on
//! different poses.

/// Posterior spread across an ensemble of per-model posteriors for one
/// frame.
///
/// Rows of different lengths are truncated to the shortest (a defensive
/// guard; callers feed same-taxonomy models). Fewer than two posteriors
/// have no disagreement to measure: the spread is `0`.
pub fn posterior_spread(posteriors: &[&[f64]]) -> f64 {
    if posteriors.len() < 2 {
        return 0.0;
    }
    let poses = posteriors.iter().map(|p| p.len()).min().unwrap_or(0);
    let mut spread = 0.0f64;
    for i in 0..poses {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in posteriors {
            let v = p[i];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        spread = spread.max(hi - lo);
    }
    spread
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_has_zero_spread() {
        let a = [0.7, 0.2, 0.1];
        let b = [0.7, 0.2, 0.1];
        assert_eq!(posterior_spread(&[&a, &b]), 0.0);
    }

    #[test]
    fn single_model_has_zero_spread() {
        let a = [0.7, 0.2, 0.1];
        assert_eq!(posterior_spread(&[&a]), 0.0);
        assert_eq!(posterior_spread(&[]), 0.0);
    }

    #[test]
    fn disagreement_measures_largest_gap() {
        let a = [0.9, 0.1, 0.0];
        let b = [0.1, 0.9, 0.0];
        let c = [0.5, 0.5, 0.0];
        let spread = posterior_spread(&[&a, &b, &c]);
        assert!((spread - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_use_common_prefix() {
        let a = [0.5, 0.5];
        let b = [0.5, 0.1, 0.4];
        let spread = posterior_spread(&[&a, &b]);
        assert!((spread - 0.4).abs() < 1e-12);
    }
}
