//! The deterministic per-clip [`QualityReport`] and its JSON forms.

use crate::config::QualityConfig;
use crate::Reason;
use slj_obs::JsonWriter;

/// Aggregate quality verdict for one clip.
///
/// Built by [`crate::ClipAnalyzer::report`]; everything is a pure
/// function of the observed signal stream and the config, so two runs
/// over the same clip produce byte-identical JSON regardless of thread
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Frames observed.
    pub frames: u32,
    /// Frames carrying at least one flag.
    pub flagged_frames: u32,
    /// Overall confidence in `[0, 1]`: `1` is pristine, `0` is garbage.
    /// Computed as `1 - Σ weight(r) · reason_frames(r)/frames`, clamped.
    pub clip_score: f64,
    /// Per-frame flag masks (bits per [`Reason`]), in frame order.
    pub frame_flags: Vec<u32>,
    /// Frames flagged per reason, indexed by [`Reason`] order.
    pub reason_frames: [u32; Reason::ALL.len()],
}

impl QualityReport {
    /// Builds the report from an analyzer's accumulated state.
    pub(crate) fn from_analysis(
        config: &QualityConfig,
        flags: &[u32],
        reason_frames: [u32; Reason::ALL.len()],
    ) -> QualityReport {
        let frames = flags.len() as u32;
        let flagged_frames = flags.iter().filter(|&&f| f != 0).count() as u32;
        let clip_score = if frames == 0 {
            1.0
        } else {
            let mut penalty = 0.0f64;
            for reason in Reason::ALL {
                penalty +=
                    config.weight(reason) * reason_frames[reason as usize] as f64 / frames as f64;
            }
            (1.0 - penalty).clamp(0.0, 1.0)
        };
        QualityReport {
            frames,
            flagged_frames,
            clip_score,
            frame_flags: flags.to_vec(),
            reason_frames,
        }
    }

    /// Reasons with at least one flagged frame, canonical order.
    pub fn reasons(&self) -> impl Iterator<Item = (Reason, u32)> + '_ {
        Reason::ALL
            .into_iter()
            .map(|r| (r, self.reason_frames[r as usize]))
            .filter(|&(_, n)| n > 0)
    }

    /// Whether no frame carried any flag.
    pub fn is_clean(&self) -> bool {
        self.flagged_frames == 0
    }

    /// Serialises the report body (score, counts, reasons; no per-frame
    /// flags) into `w` as one JSON object.
    pub fn write_summary(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("score");
        w.f64(self.clip_score);
        w.key("frames");
        w.u64(self.frames as u64);
        w.key("flagged_frames");
        w.u64(self.flagged_frames as u64);
        w.key("reasons");
        w.begin_array();
        for (reason, frames) in self.reasons() {
            w.begin_object();
            w.key("code");
            w.string(reason.code());
            w.key("frames");
            w.u64(frames as u64);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// The summary as a standalone JSON string.
    pub fn summary_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_summary(&mut w);
        w.finish()
    }

    /// Full report JSON: the summary plus per-frame reason codes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("score");
        w.f64(self.clip_score);
        w.key("frames");
        w.u64(self.frames as u64);
        w.key("flagged_frames");
        w.u64(self.flagged_frames as u64);
        w.key("reasons");
        w.begin_array();
        for (reason, frames) in self.reasons() {
            w.begin_object();
            w.key("code");
            w.string(reason.code());
            w.key("frames");
            w.u64(frames as u64);
            w.end_object();
        }
        w.end_array();
        w.key("frame_flags");
        w.begin_array();
        for &mask in &self.frame_flags {
            w.begin_array();
            for reason in Reason::decode(mask) {
                w.string(reason.code());
            }
            w.end_array();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{ClipAnalyzer, DecisionSignals, FrameSignals, PartLayout};

    fn scored(frames: usize, low_frames: usize) -> QualityReport {
        let mut a = ClipAnalyzer::new(QualityConfig::default(), PartLayout::anonymous(0));
        for i in 0..frames {
            let margin = if i < low_frames { -0.2 } else { 0.3 };
            a.observe(&FrameSignals {
                decision: Some(DecisionSignals {
                    best_prob: 0.5,
                    th_margin: margin,
                    accepted: margin > 0.0,
                    carry_forward: false,
                }),
                ..FrameSignals::default()
            });
        }
        a.report()
    }

    #[test]
    fn empty_clip_is_pristine() {
        let report = scored(0, 0);
        assert_eq!(report.frames, 0);
        assert!((report.clip_score - 1.0).abs() < 1e-12);
        assert!(report.is_clean());
    }

    #[test]
    fn score_decreases_with_flagged_fraction() {
        let clean = scored(20, 0);
        let some = scored(20, 8);
        let many = scored(20, 16);
        assert!(clean.clip_score > some.clip_score);
        assert!(some.clip_score > many.clip_score);
        assert!(many.clip_score >= 0.0);
    }

    #[test]
    fn score_formula_matches_weights() {
        // 20 frames, 8 low: run=4 so frames 4..=8 of the run are
        // flagged → 5 flagged frames at weight 2: 1 - 2·5/20 = 0.5.
        let report = scored(20, 8);
        assert_eq!(report.flagged_frames, 5);
        assert!((report.clip_score - 0.5).abs() < 1e-12, "{report:?}");
    }

    #[test]
    fn summary_json_shape() {
        let report = scored(20, 8);
        let json = report.summary_json();
        assert!(json.starts_with("{\"score\":0.5,\"frames\":20,\"flagged_frames\":5"));
        assert!(json.contains("{\"code\":\"low_likelihood_run\",\"frames\":5}"));
        assert!(!json.contains("frame_flags"));
    }

    #[test]
    fn full_json_carries_per_frame_codes() {
        let report = scored(6, 6);
        let json = report.to_json();
        // low_run=4: frames 0..3 clean, 3..6 flagged.
        assert!(json.contains("\"frame_flags\":[[],[],[],[\"low_likelihood_run\"]"));
    }

    #[test]
    fn clean_summary_has_empty_reasons() {
        let report = scored(10, 0);
        assert_eq!(
            report.summary_json(),
            "{\"score\":1,\"frames\":10,\"flagged_frames\":0,\"reasons\":[]}"
        );
    }
}
