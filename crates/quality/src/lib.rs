//! Pose-quality diagnostics over the artifacts the pipeline already
//! produces.
//!
//! The paper's DBN emits a posterior over poses every frame, but the
//! posterior alone does not say whether it is *trustworthy*: a clean
//! studio clip and a garbage upload both come back as a confident-looking
//! pose sequence. This crate computes per-frame quality signals from the
//! decision records, silhouettes and key points the engine produces
//! anyway, and aggregates them into a deterministic per-clip
//! [`QualityReport`]:
//!
//! - **Below-threshold likelihood runs** — consecutive frames whose
//!   `Th_Pose` margin sits under the configured floor
//!   ([`Reason::LowLikelihoodRun`]).
//! - **Carry-forward runs** — consecutive frames where the classifier
//!   reused the previous pose because the frame was Unknown
//!   ([`Reason::CarryForwardRun`]).
//! - **Temporal jumps** — implausible frame-to-frame key-point or
//!   centroid motion ([`Reason::TemporalJump`]).
//! - **Skeleton violations** — part-distance constraints over the
//!   taxonomy's part layout, e.g. the head ending up below the foot
//!   ([`Reason::SkeletonViolation`]).
//! - **Silhouette health** — foreground-pixel-count spikes
//!   ([`Reason::SilhouetteSpike`]) and empty-silhouette streaks
//!   ([`Reason::EmptySilhouetteRun`]).
//! - **Ensemble variance** — posterior spread across multiple trained
//!   models, when supplied ([`Reason::EnsembleDivergence`]).
//!
//! All thresholds live in a versioned `slj-quality v1` text artifact
//! ([`QualityConfig`]), so deployments can tune the gate without a
//! rebuild. Everything here is deterministic: the same signal stream
//! produces the same flags and the same `clip_score`, bit for bit,
//! regardless of thread count — which is what makes the report usable as
//! a CI statistical regression gate.

pub mod config;
pub mod ensemble;
pub mod report;
pub mod signals;

pub use config::{QualityConfig, QUALITY_MAGIC};
pub use ensemble::posterior_spread;
pub use report::QualityReport;
pub use signals::{
    ClipAnalyzer, DecisionSignals, FrameSignals, PartLayout, SilhouetteSignals, MAX_PARTS,
};

use std::fmt;

/// Why a frame was flagged. Each reason owns one bit in the per-frame
/// flag mask; [`Reason::ALL`] fixes the canonical order used everywhere
/// (bit positions, report JSON, config weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Reason {
    /// `Th_Pose` margin below the floor for `low_run`+ consecutive frames.
    LowLikelihoodRun = 0,
    /// Carry-forward (Unknown frame) for `carry_run`+ consecutive frames.
    CarryForwardRun = 1,
    /// Key-point/centroid delta above the per-frame motion budget.
    TemporalJump = 2,
    /// Part-distance constraint violated (inversion or over-span).
    SkeletonViolation = 3,
    /// Foreground pixel count spiked frame-over-frame or exceeded the
    /// plausible fraction of the frame.
    SilhouetteSpike = 4,
    /// Empty silhouette for `empty_run`+ consecutive frames.
    EmptySilhouetteRun = 5,
    /// Posterior spread across the model ensemble above the threshold.
    EnsembleDivergence = 6,
}

impl Reason {
    /// Every reason, in canonical (bit) order.
    pub const ALL: [Reason; 7] = [
        Reason::LowLikelihoodRun,
        Reason::CarryForwardRun,
        Reason::TemporalJump,
        Reason::SkeletonViolation,
        Reason::SilhouetteSpike,
        Reason::EmptySilhouetteRun,
        Reason::EnsembleDivergence,
    ];

    /// Stable snake_case code used in JSON output and the config artifact.
    pub fn code(self) -> &'static str {
        match self {
            Reason::LowLikelihoodRun => "low_likelihood_run",
            Reason::CarryForwardRun => "carry_forward_run",
            Reason::TemporalJump => "temporal_jump",
            Reason::SkeletonViolation => "skeleton_violation",
            Reason::SilhouetteSpike => "silhouette_spike",
            Reason::EmptySilhouetteRun => "empty_silhouette_run",
            Reason::EnsembleDivergence => "ensemble_divergence",
        }
    }

    /// Parses a reason code written by [`Reason::code`].
    pub fn from_code(code: &str) -> Option<Reason> {
        Reason::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// The bit this reason occupies in a frame-flag mask.
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Decodes a frame-flag mask into reasons, canonical order.
    pub fn decode(mask: u32) -> impl Iterator<Item = Reason> {
        Reason::ALL.into_iter().filter(move |r| mask & r.bit() != 0)
    }
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Errors from parsing or validating an `slj-quality` artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QualityError {
    /// The artifact text is malformed or fails validation.
    Format {
        /// 1-based line number (0 when the problem is file-wide).
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for QualityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityError::Format { line, message } if *line > 0 => {
                write!(f, "quality config line {line}: {message}")
            }
            QualityError::Format { message, .. } => {
                write!(f, "quality config: {message}")
            }
        }
    }
}

impl std::error::Error for QualityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_bits_are_distinct_and_ordered() {
        let mut seen = 0u32;
        for (i, r) in Reason::ALL.iter().enumerate() {
            assert_eq!(r.bit(), 1 << i, "{r}");
            assert_eq!(seen & r.bit(), 0);
            seen |= r.bit();
        }
    }

    #[test]
    fn codes_round_trip() {
        for r in Reason::ALL {
            assert_eq!(Reason::from_code(r.code()), Some(r));
        }
        assert_eq!(Reason::from_code("nope"), None);
    }

    #[test]
    fn decode_lists_set_bits_in_order() {
        let mask = Reason::TemporalJump.bit() | Reason::EmptySilhouetteRun.bit();
        let got: Vec<Reason> = Reason::decode(mask).collect();
        assert_eq!(got, vec![Reason::TemporalJump, Reason::EmptySilhouetteRun]);
    }
}
