//! Per-frame signal extraction: the streaming [`ClipAnalyzer`].
//!
//! The analyzer consumes one [`FrameSignals`] per frame — plain data the
//! engine already has in hand (decision record, foreground pixel count,
//! key-point positions) — and returns the frame's flag mask immediately,
//! so streaming callers (trace records, session responses) can surface
//! quality at frame time without waiting for the clip to end.
//!
//! Run-based reasons (likelihood, carry-forward, empty silhouette) flag
//! the frame at which the streak *reaches* the configured length and
//! every frame after it while the streak holds: the first `run - 1`
//! frames of a run are not flagged. That keeps the analyzer causal — a
//! flag never depends on future frames — which is what makes per-frame
//! output well-defined for streaming.
//!
//! The analyzer holds no heap-growing state besides the per-frame flag
//! log, so feeding it from the engine's hot path costs a few dozen
//! arithmetic ops per frame.

use crate::config::QualityConfig;
use crate::report::QualityReport;
use crate::Reason;

/// Upper bound on taxonomy part counts the analyzer supports; the fixed
/// array keeps [`FrameSignals`] allocation-free on the hot path.
pub const MAX_PARTS: usize = 8;

/// The classifier outputs a quality-relevant slice of each `Decision`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionSignals {
    /// Winning pose posterior.
    pub best_prob: f64,
    /// `best_prob - Th_Pose` (negative means below threshold).
    pub th_margin: f64,
    /// Whether the threshold rule accepted the frame.
    pub accepted: bool,
    /// Whether the pose was carried forward from the previous frame.
    pub carry_forward: bool,
}

/// Silhouette-stage health inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SilhouetteSignals {
    /// Foreground pixels in the cleaned silhouette.
    pub foreground: u64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
}

/// Everything the analyzer sees for one frame. Fields the caller cannot
/// supply (e.g. no ensemble loaded) stay `None` and their signals are
/// simply skipped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameSignals {
    /// Classifier decision, when the DBN ran for this frame.
    pub decision: Option<DecisionSignals>,
    /// Silhouette-stage health, when the front end ran.
    pub silhouette: Option<SilhouetteSignals>,
    /// Key-point positions in taxonomy part order (x right, y down);
    /// undetected parts are `None`. Slots past the taxonomy's part count
    /// are ignored.
    pub parts: [Option<(f64, f64)>; MAX_PARTS],
    /// Posterior spread across the model ensemble, when one is loaded
    /// (see [`crate::ensemble::posterior_spread`]).
    pub ensemble: Option<f64>,
}

/// How the taxonomy's part vocabulary maps onto [`FrameSignals::parts`].
///
/// The part list itself lives in the taxonomy artifact; the analyzer
/// only needs its size and which slots anchor the vertical-order
/// constraint (head must not sink below foot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartLayout {
    /// Number of parts the taxonomy declares (capped at [`MAX_PARTS`]).
    pub count: usize,
    /// Index of the head part, when the layout has one.
    pub head: Option<usize>,
    /// Index of the foot part, when the layout has one.
    pub foot: Option<usize>,
}

impl PartLayout {
    /// Layout with `count` parts and no vertical-order anchors.
    pub fn anonymous(count: usize) -> Self {
        PartLayout {
            count: count.min(MAX_PARTS),
            head: None,
            foot: None,
        }
    }

    /// The paper's canonical five-part layout
    /// (head, chest, hand, knee, foot).
    pub fn canonical_five() -> Self {
        PartLayout {
            count: 5,
            head: Some(0),
            foot: Some(4),
        }
    }
}

/// Streaming per-clip analyzer: feed frames with
/// [`ClipAnalyzer::observe`], read the aggregate with
/// [`ClipAnalyzer::report`].
#[derive(Debug, Clone)]
pub struct ClipAnalyzer {
    config: QualityConfig,
    layout: PartLayout,
    flags: Vec<u32>,
    reason_frames: [u32; Reason::ALL.len()],
    low_streak: usize,
    carry_streak: usize,
    empty_streak: usize,
    prev_foreground: Option<u64>,
    prev_parts: [Option<(f64, f64)>; MAX_PARTS],
    prev_centroid: Option<(f64, f64)>,
}

impl ClipAnalyzer {
    /// Creates an analyzer for one clip.
    pub fn new(config: QualityConfig, layout: PartLayout) -> Self {
        ClipAnalyzer {
            config,
            layout,
            flags: Vec::new(),
            reason_frames: [0; Reason::ALL.len()],
            low_streak: 0,
            carry_streak: 0,
            empty_streak: 0,
            prev_foreground: None,
            prev_parts: [None; MAX_PARTS],
            prev_centroid: None,
        }
    }

    /// The config this analyzer runs with.
    pub fn config(&self) -> &QualityConfig {
        &self.config
    }

    /// Clears all per-clip state so the analyzer can score another clip.
    pub fn reset(&mut self) {
        self.flags.clear();
        self.reason_frames = [0; Reason::ALL.len()];
        self.low_streak = 0;
        self.carry_streak = 0;
        self.empty_streak = 0;
        self.prev_foreground = None;
        self.prev_parts = [None; MAX_PARTS];
        self.prev_centroid = None;
    }

    /// Consumes one frame's signals; returns the frame's flag mask.
    pub fn observe(&mut self, signals: &FrameSignals) -> u32 {
        let mut flags = 0u32;

        if let Some(d) = &signals.decision {
            if d.th_margin < self.config.margin_floor {
                self.low_streak += 1;
            } else {
                self.low_streak = 0;
            }
            if self.low_streak >= self.config.low_run {
                flags |= Reason::LowLikelihoodRun.bit();
            }
            if d.carry_forward {
                self.carry_streak += 1;
            } else {
                self.carry_streak = 0;
            }
            if self.carry_streak >= self.config.carry_run {
                flags |= Reason::CarryForwardRun.bit();
            }
        }

        let mut diag = 0.0f64;
        let mut silhouette_empty = false;
        if let Some(s) = &signals.silhouette {
            let w = s.width as f64;
            let h = s.height as f64;
            diag = (w * w + h * h).sqrt();
            // Zero when the caller knows only the pixel count (e.g.
            // scoring a trace that records `foreground_px` but not the
            // frame dimensions) — the fraction check is skipped then.
            let area = w * h;
            silhouette_empty = s.foreground == 0;
            if silhouette_empty {
                self.empty_streak += 1;
            } else {
                self.empty_streak = 0;
            }
            if self.empty_streak >= self.config.empty_run {
                flags |= Reason::EmptySilhouetteRun.bit();
            }
            if let Some(prev) = self.prev_foreground {
                if prev > 0 && s.foreground > 0 {
                    let ratio = s.foreground as f64 / prev as f64;
                    if ratio > self.config.spike_ratio || ratio < 1.0 / self.config.spike_ratio {
                        flags |= Reason::SilhouetteSpike.bit();
                    }
                }
            }
            if area > 0.0 && s.foreground as f64 / area > self.config.max_foreground {
                flags |= Reason::SilhouetteSpike.bit();
            }
            self.prev_foreground = Some(s.foreground);
        }

        // Key-point constraints need a length scale; without a
        // silhouette (diag unknown) they are skipped.
        if diag > 0.0 {
            flags |= self.part_flags(signals, diag, silhouette_empty);
        }

        if let Some(spread) = signals.ensemble {
            if spread > self.config.ensemble_divergence {
                flags |= Reason::EnsembleDivergence.bit();
            }
        }

        for reason in Reason::ALL {
            if flags & reason.bit() != 0 {
                self.reason_frames[reason as usize] += 1;
            }
        }
        self.flags.push(flags);
        flags
    }

    fn part_flags(&mut self, signals: &FrameSignals, diag: f64, silhouette_empty: bool) -> u32 {
        let mut flags = 0u32;
        let n = self.layout.count.min(MAX_PARTS);
        let parts = &signals.parts;

        // Skeleton violations are intra-frame: vertical inversion and
        // implausible part spans.
        if let (Some(hi), Some(fi)) = (self.layout.head, self.layout.foot) {
            if let (Some(head), Some(foot)) = (
                parts.get(hi).copied().flatten(),
                parts.get(fi).copied().flatten(),
            ) {
                // y grows downward: the head sitting *below* the foot by
                // more than the tolerance is an inversion.
                if head.1 - foot.1 > self.config.max_inversion * diag {
                    flags |= Reason::SkeletonViolation.bit();
                }
            }
        }
        for i in 0..n {
            let Some(a) = parts.get(i).copied().flatten() else {
                continue;
            };
            for j in (i + 1)..n {
                let Some(b) = parts.get(j).copied().flatten() else {
                    continue;
                };
                if dist(a, b) > self.config.max_part_span * diag {
                    flags |= Reason::SkeletonViolation.bit();
                }
            }
        }

        // Temporal deltas compare against the previous frame that had a
        // jumper in view; an empty silhouette breaks the chain (nothing
        // plausible to measure motion against).
        if silhouette_empty {
            self.prev_parts = [None; MAX_PARTS];
            self.prev_centroid = None;
            return flags;
        }

        let mut sum = (0.0f64, 0.0f64);
        let mut detected = 0usize;
        for part in parts.iter().take(n).flatten() {
            sum.0 += part.0;
            sum.1 += part.1;
            detected += 1;
        }
        let centroid = (detected > 0).then(|| (sum.0 / detected as f64, sum.1 / detected as f64));

        if let (Some(c), Some(p)) = (centroid, self.prev_centroid) {
            if dist(c, p) > self.config.max_centroid_jump * diag {
                flags |= Reason::TemporalJump.bit();
            }
        }
        for i in 0..n {
            if let (Some(a), Some(b)) = (
                parts.get(i).copied().flatten(),
                self.prev_parts.get(i).copied().flatten(),
            ) {
                if dist(a, b) > self.config.max_part_jump * diag {
                    flags |= Reason::TemporalJump.bit();
                }
            }
        }
        self.prev_parts = *parts;
        self.prev_centroid = centroid;
        flags
    }

    /// Frames observed so far.
    pub fn frames(&self) -> usize {
        self.flags.len()
    }

    /// Per-frame flag masks, in frame order.
    pub fn frame_flags(&self) -> &[u32] {
        &self.flags
    }

    /// Aggregates everything observed so far into a report.
    pub fn report(&self) -> QualityReport {
        QualityReport::from_analysis(&self.config, &self.flags, self.reason_frames)
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> ClipAnalyzer {
        ClipAnalyzer::new(QualityConfig::default(), PartLayout::canonical_five())
    }

    fn good_frame() -> FrameSignals {
        FrameSignals {
            decision: Some(DecisionSignals {
                best_prob: 0.9,
                th_margin: 0.4,
                accepted: true,
                carry_forward: false,
            }),
            silhouette: Some(SilhouetteSignals {
                foreground: 500,
                width: 120,
                height: 90,
            }),
            parts: [
                Some((60.0, 20.0)), // head
                Some((60.0, 35.0)), // chest
                Some((70.0, 40.0)), // hand
                Some((60.0, 60.0)), // knee
                Some((60.0, 80.0)), // foot
                None,
                None,
                None,
            ],
            ensemble: None,
        }
    }

    #[test]
    fn clean_stream_has_no_flags() {
        let mut a = analyzer();
        for _ in 0..30 {
            assert_eq!(a.observe(&good_frame()), 0);
        }
        let report = a.report();
        assert_eq!(report.flagged_frames, 0);
        assert!((report.clip_score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_margin_run_flags_at_threshold() {
        let mut a = analyzer();
        let mut low = good_frame();
        if let Some(d) = low.decision.as_mut() {
            d.th_margin = -0.1;
        }
        let run = a.config().low_run;
        for i in 1..=run + 2 {
            let flags = a.observe(&low);
            if i < run {
                assert_eq!(flags & Reason::LowLikelihoodRun.bit(), 0, "frame {i}");
            } else {
                assert_ne!(flags & Reason::LowLikelihoodRun.bit(), 0, "frame {i}");
            }
        }
        // A good frame resets the streak.
        assert_eq!(a.observe(&good_frame()), 0);
        assert_eq!(a.observe(&low) & Reason::LowLikelihoodRun.bit(), 0);
    }

    #[test]
    fn carry_forward_run_flags() {
        let mut a = analyzer();
        let mut frame = good_frame();
        if let Some(d) = frame.decision.as_mut() {
            d.carry_forward = true;
        }
        let mut flagged = false;
        for _ in 0..a.config().carry_run + 1 {
            flagged = a.observe(&frame) & Reason::CarryForwardRun.bit() != 0;
        }
        assert!(flagged);
    }

    #[test]
    fn empty_silhouette_run_flags_and_breaks_temporal_chain() {
        let mut a = analyzer();
        a.observe(&good_frame());
        let mut empty = good_frame();
        empty.silhouette = Some(SilhouetteSignals {
            foreground: 0,
            width: 120,
            height: 90,
        });
        empty.parts = [None; MAX_PARTS];
        let mut saw_empty = 0u32;
        for _ in 0..a.config().empty_run {
            saw_empty = a.observe(&empty) & Reason::EmptySilhouetteRun.bit();
        }
        assert_ne!(saw_empty, 0);
        // Jumper reappears far away: not a temporal jump (chain broken),
        // but foreground reappearing is not a spike either (prev was 0).
        let mut moved = good_frame();
        for p in moved.parts.iter_mut().flatten() {
            p.0 += 50.0;
        }
        let flags = a.observe(&moved);
        assert_eq!(flags & Reason::TemporalJump.bit(), 0);
    }

    #[test]
    fn foreground_spike_flags() {
        let mut a = analyzer();
        a.observe(&good_frame());
        let mut spiked = good_frame();
        spiked.silhouette = Some(SilhouetteSignals {
            foreground: 2000,
            width: 120,
            height: 90,
        });
        assert_ne!(a.observe(&spiked) & Reason::SilhouetteSpike.bit(), 0);
    }

    #[test]
    fn saturated_foreground_flags_without_history() {
        let mut a = analyzer();
        let mut flooded = good_frame();
        flooded.silhouette = Some(SilhouetteSignals {
            foreground: 120 * 90,
            width: 120,
            height: 90,
        });
        assert_ne!(a.observe(&flooded) & Reason::SilhouetteSpike.bit(), 0);
    }

    #[test]
    fn centroid_and_part_jumps_flag() {
        let mut a = analyzer();
        a.observe(&good_frame());
        let mut jumped = good_frame();
        for p in jumped.parts.iter_mut().flatten() {
            p.0 += 80.0;
        }
        assert_ne!(a.observe(&jumped) & Reason::TemporalJump.bit(), 0);

        let mut a = analyzer();
        a.observe(&good_frame());
        let mut one_part = good_frame();
        one_part.parts[2] = Some((10.0, 85.0)); // hand teleports
        assert_ne!(a.observe(&one_part) & Reason::TemporalJump.bit(), 0);
    }

    #[test]
    fn inverted_skeleton_flags() {
        let mut a = analyzer();
        let mut inverted = good_frame();
        inverted.parts[0] = Some((60.0, 80.0)); // head at the bottom
        inverted.parts[4] = Some((60.0, 20.0)); // foot at the top
        assert_ne!(a.observe(&inverted) & Reason::SkeletonViolation.bit(), 0);
    }

    #[test]
    fn over_span_skeleton_flags() {
        let mut a = analyzer();
        let mut stretched = good_frame();
        stretched.parts[0] = Some((0.0, 0.0));
        stretched.parts[4] = Some((119.0, 89.0));
        assert_ne!(a.observe(&stretched) & Reason::SkeletonViolation.bit(), 0);
    }

    #[test]
    fn ensemble_divergence_flags() {
        let mut a = analyzer();
        let mut diverged = good_frame();
        diverged.ensemble = Some(0.9);
        assert_ne!(a.observe(&diverged) & Reason::EnsembleDivergence.bit(), 0);
        let mut agreed = good_frame();
        agreed.ensemble = Some(0.01);
        assert_eq!(a.observe(&agreed), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut a = analyzer();
        let mut low = good_frame();
        if let Some(d) = low.decision.as_mut() {
            d.th_margin = -0.5;
        }
        for _ in 0..a.config().low_run {
            a.observe(&low);
        }
        assert!(a.report().flagged_frames > 0);
        a.reset();
        assert_eq!(a.frames(), 0);
        assert_eq!(a.observe(&low) & Reason::LowLikelihoodRun.bit(), 0);
    }

    #[test]
    fn missing_signal_groups_are_skipped() {
        let mut a = ClipAnalyzer::new(QualityConfig::default(), PartLayout::anonymous(0));
        let signals = FrameSignals::default();
        for _ in 0..10 {
            assert_eq!(a.observe(&signals), 0);
        }
        assert!((a.report().clip_score - 1.0).abs() < 1e-12);
    }
}
