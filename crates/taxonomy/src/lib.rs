//! Exercise taxonomy artifacts.
//!
//! The paper's vocabulary — 22 poses partitioned into 4 jumping stages,
//! with 5 standards faults — started life baked into Rust enums. This
//! crate lifts that vocabulary into a data artifact: a [`Taxonomy`]
//! bundles the pose names and canonical indices, the stage partition,
//! a row-stochastic stage-transition prior (whose zero entries encode
//! transition legality), and declarative [`FaultRule`]s with advice
//! strings. A new exercise is then a new artifact file, not a code
//! change: every layer above — DBN sizing, training, evaluation,
//! scoring, serving, auditing — reads counts and names from the
//! taxonomy it was handed.
//!
//! Artifacts use a versioned line-oriented text format (magic
//! `slj-taxonomy v1`) in the same hand-rolled style as the pose-model
//! format, so they diff cleanly and need no serialisation dependency.
//! Fields within a line are `|`-separated because pose display names
//! contain spaces and `&`.

use std::fmt;

/// Magic first line of the artifact format.
pub const MAGIC: &str = "slj-taxonomy v1";

/// Tolerance for the stage-prior row-sum check (matches the model
/// auditor's `EPS`).
pub const ROW_SUM_EPS: f64 = 1e-9;

/// One stage of the exercise (a contiguous phase such as "in the air").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageInfo {
    /// Machine name, used in wire records and trace output
    /// (e.g. `BeforeJumping`). No spaces, no `|`.
    pub ident: String,
    /// Human-readable name used in reports (e.g. "before jumping").
    pub display: String,
}

/// One pose of the exercise vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoseInfo {
    /// Machine name, used in wire records and trace output.
    pub ident: String,
    /// Human-readable name used in reports and confusion matrices.
    pub display: String,
    /// Index of the stage this pose belongs to.
    pub stage: usize,
}

/// Whether a fault rule requires evidence of its poses or forbids it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// The fault fires when the pose evidence count is *below*
    /// `min_frames` (a required movement was missing).
    Require,
    /// The fault fires when the pose evidence count *reaches*
    /// `min_frames` (a forbidden movement was observed).
    Forbid,
}

/// A declarative standards fault: fires on a pose-evidence count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Machine name (e.g. `NoArmSwing`).
    pub ident: String,
    /// Human-readable fault description.
    pub display: String,
    /// Stage the fault is attributed to.
    pub stage: usize,
    /// Require or forbid the listed poses.
    pub polarity: Polarity,
    /// Pose indices whose recognised frames count as evidence.
    pub poses: Vec<usize>,
    /// Evidence-count threshold.
    pub min_frames: usize,
    /// Corrective advice reported with the fault.
    pub advice: String,
}

/// A validation or parse failure, tagged with the audit rule it
/// violates (`taxonomy/format`, `taxonomy/partition`,
/// `taxonomy/row-sum` or `taxonomy/unknown-pose`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyError {
    /// Audit rule identifier.
    pub code: &'static str,
    /// Human-readable description of the problem.
    pub message: String,
}

impl TaxonomyError {
    fn format(message: impl Into<String>) -> Self {
        TaxonomyError {
            code: "taxonomy/format",
            message: message.into(),
        }
    }
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for TaxonomyError {}

/// The full vocabulary of one exercise.
///
/// Invariants (checked by [`Taxonomy::new`] and re-checked after
/// parsing): at least one stage and one pose; every pose names an
/// existing stage and every stage owns at least one pose; poses are
/// grouped by stage in stage order (so "poses of stage s" is a
/// contiguous index range, which the trainer's in-stage smoothing
/// relies on); the stage prior is row-stochastic with non-negative
/// entries; fault rules reference existing poses and stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Taxonomy {
    name: String,
    parts: usize,
    stages: Vec<StageInfo>,
    poses: Vec<PoseInfo>,
    initial_pose: usize,
    majority_pose: Option<usize>,
    stage_prior: Vec<Vec<f64>>,
    faults: Vec<FaultRule>,
}

impl Taxonomy {
    /// Builds and validates a taxonomy.
    ///
    /// # Errors
    ///
    /// Returns a [`TaxonomyError`] describing the first violated
    /// invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        parts: usize,
        stages: Vec<StageInfo>,
        poses: Vec<PoseInfo>,
        initial_pose: usize,
        majority_pose: Option<usize>,
        stage_prior: Vec<Vec<f64>>,
        faults: Vec<FaultRule>,
    ) -> Result<Self, TaxonomyError> {
        let t = Taxonomy {
            name: name.into(),
            parts,
            stages,
            poses,
            initial_pose,
            majority_pose,
            stage_prior,
            faults,
        };
        t.validate()?;
        Ok(t)
    }

    /// Exercise name (e.g. `standing-long-jump`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of observed body parts the feature vector carries.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of poses in the vocabulary.
    pub fn pose_count(&self) -> usize {
        self.poses.len()
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Pose metadata by index.
    pub fn pose(&self, index: usize) -> &PoseInfo {
        &self.poses[index]
    }

    /// Stage metadata by index.
    pub fn stage(&self, index: usize) -> &StageInfo {
        &self.stages[index]
    }

    /// All poses in canonical order.
    pub fn poses(&self) -> &[PoseInfo] {
        &self.poses
    }

    /// All stages in canonical order.
    pub fn stages(&self) -> &[StageInfo] {
        &self.stages
    }

    /// Machine name of pose `index`.
    pub fn pose_ident(&self, index: usize) -> &str {
        &self.poses[index].ident
    }

    /// Human-readable name of pose `index`.
    pub fn pose_display(&self, index: usize) -> &str {
        &self.poses[index].display
    }

    /// Machine name of stage `index`.
    pub fn stage_ident(&self, index: usize) -> &str {
        &self.stages[index].ident
    }

    /// Human-readable name of stage `index`.
    pub fn stage_display(&self, index: usize) -> &str {
        &self.stages[index].display
    }

    /// Looks a pose up by machine name.
    pub fn pose_index(&self, ident: &str) -> Option<usize> {
        self.poses.iter().position(|p| p.ident == ident)
    }

    /// Looks a stage up by machine name.
    pub fn stage_index(&self, ident: &str) -> Option<usize> {
        self.stages.iter().position(|s| s.ident == ident)
    }

    /// Stage that pose `index` belongs to.
    pub fn stage_of_pose(&self, index: usize) -> usize {
        self.poses[index].stage
    }

    /// Indices of the poses belonging to stage `stage`.
    pub fn poses_in_stage(&self, stage: usize) -> Vec<usize> {
        (0..self.poses.len())
            .filter(|&p| self.poses[p].stage == stage)
            .collect()
    }

    /// The pose the subject starts in (slice-0 prior of the DBN).
    pub fn initial_pose(&self) -> usize {
        self.initial_pose
    }

    /// The high-frequency pose exempt from the decision threshold, if
    /// the exercise declares one.
    pub fn majority_pose(&self) -> Option<usize> {
        self.majority_pose
    }

    /// Row-stochastic stage-transition prior. Zero entries are illegal
    /// transitions.
    pub fn stage_prior(&self) -> &[Vec<f64>] {
        &self.stage_prior
    }

    /// Whether the stage transition `from -> to` is legal.
    pub fn can_transition(&self, from: usize, to: usize) -> bool {
        self.stage_prior[from][to] > 0.0
    }

    /// The declarative fault rules, in reporting order.
    pub fn faults(&self) -> &[FaultRule] {
        &self.faults
    }

    /// Runs the fault rules over a recognised pose sequence (`None` =
    /// frame left Unknown) and returns the indices of the rules that
    /// fired, in rule order.
    pub fn assess(&self, poses: &[Option<usize>]) -> Vec<usize> {
        let mut counts = vec![0usize; self.poses.len()];
        for pose in poses.iter().flatten() {
            if let Some(c) = counts.get_mut(*pose) {
                *c += 1;
            }
        }
        self.faults
            .iter()
            .enumerate()
            .filter(|(_, rule)| {
                let evidence: usize = rule.poses.iter().map(|&p| counts[p]).sum();
                match rule.polarity {
                    Polarity::Require => evidence < rule.min_frames,
                    Polarity::Forbid => evidence >= rule.min_frames,
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-checks every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, tagged with its audit
    /// rule code.
    pub fn validate(&self) -> Result<(), TaxonomyError> {
        if self.name.is_empty()
            || self.name.contains('|')
            || self.name.contains(char::is_whitespace)
        {
            return Err(TaxonomyError::format(format!(
                "name {:?} must be non-empty with no whitespace or '|'",
                self.name
            )));
        }
        if self.parts == 0 {
            return Err(TaxonomyError::format("parts must be non-zero"));
        }
        if self.stages.is_empty() {
            return Err(TaxonomyError::format("at least one stage required"));
        }
        if self.poses.is_empty() {
            return Err(TaxonomyError::format("at least one pose required"));
        }
        for (names, kind) in [
            (
                self.stages.iter().map(|s| &s.ident).collect::<Vec<_>>(),
                "stage",
            ),
            (
                self.poses.iter().map(|p| &p.ident).collect::<Vec<_>>(),
                "pose",
            ),
        ] {
            for (i, name) in names.iter().enumerate() {
                if name.is_empty() || name.contains('|') || name.contains(char::is_whitespace) {
                    return Err(TaxonomyError::format(format!(
                        "{kind} ident {name:?} must be non-empty with no whitespace or '|'"
                    )));
                }
                if names[..i].contains(name) {
                    return Err(TaxonomyError::format(format!(
                        "duplicate {kind} ident {name:?}"
                    )));
                }
            }
        }
        let display_fields = self
            .stages
            .iter()
            .map(|s| &s.display)
            .chain(self.poses.iter().map(|p| &p.display))
            .chain(self.faults.iter().map(|f| &f.display));
        for d in display_fields {
            if d.contains('|') || d.contains('\n') {
                return Err(TaxonomyError::format(format!(
                    "display name {d:?} must not contain '|' or newlines"
                )));
            }
        }
        if self.faults.iter().any(|f| f.advice.contains('\n')) {
            return Err(TaxonomyError::format("advice must not contain newlines"));
        }
        // Stage partition: every pose in a real stage, grouped in
        // stage order, and no empty stage.
        let mut prev_stage = 0usize;
        for pose in &self.poses {
            if pose.stage >= self.stages.len() {
                return Err(TaxonomyError {
                    code: "taxonomy/partition",
                    message: format!(
                        "pose {:?} references stage {} but only {} stages exist",
                        pose.ident,
                        pose.stage,
                        self.stages.len()
                    ),
                });
            }
            if pose.stage < prev_stage {
                return Err(TaxonomyError {
                    code: "taxonomy/partition",
                    message: format!(
                        "pose {:?} (stage {}) breaks the stage-ordered pose grouping",
                        pose.ident, pose.stage
                    ),
                });
            }
            prev_stage = pose.stage;
        }
        for s in 0..self.stages.len() {
            if !self.poses.iter().any(|p| p.stage == s) {
                return Err(TaxonomyError {
                    code: "taxonomy/partition",
                    message: format!("stage {:?} owns no poses", self.stages[s].ident),
                });
            }
        }
        if self.initial_pose >= self.poses.len() {
            return Err(TaxonomyError {
                code: "taxonomy/unknown-pose",
                message: format!("initial pose index {} out of range", self.initial_pose),
            });
        }
        if let Some(m) = self.majority_pose {
            if m >= self.poses.len() {
                return Err(TaxonomyError {
                    code: "taxonomy/unknown-pose",
                    message: format!("majority pose index {m} out of range"),
                });
            }
        }
        // Stage prior: square, non-negative, row-stochastic.
        if self.stage_prior.len() != self.stages.len() {
            return Err(TaxonomyError::format(format!(
                "stage prior has {} rows; expected {}",
                self.stage_prior.len(),
                self.stages.len()
            )));
        }
        for (s, row) in self.stage_prior.iter().enumerate() {
            if row.len() != self.stages.len() {
                return Err(TaxonomyError::format(format!(
                    "stage prior row {s} has {} columns; expected {}",
                    row.len(),
                    self.stages.len()
                )));
            }
            if row.iter().any(|&v| !v.is_finite() || v < 0.0) {
                return Err(TaxonomyError {
                    code: "taxonomy/row-sum",
                    message: format!("stage prior row {s} has a negative or non-finite entry"),
                });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_EPS {
                return Err(TaxonomyError {
                    code: "taxonomy/row-sum",
                    message: format!("stage prior row {s} sums to {sum:e}, expected 1"),
                });
            }
        }
        // Fault rules.
        for rule in &self.faults {
            if rule.ident.is_empty()
                || rule.ident.contains('|')
                || rule.ident.contains(char::is_whitespace)
            {
                return Err(TaxonomyError::format(format!(
                    "fault ident {:?} must be non-empty with no whitespace or '|'",
                    rule.ident
                )));
            }
            if rule.stage >= self.stages.len() {
                return Err(TaxonomyError {
                    code: "taxonomy/partition",
                    message: format!(
                        "fault {:?} references stage {} but only {} stages exist",
                        rule.ident,
                        rule.stage,
                        self.stages.len()
                    ),
                });
            }
            if rule.poses.is_empty() {
                return Err(TaxonomyError::format(format!(
                    "fault {:?} lists no evidence poses",
                    rule.ident
                )));
            }
            for &p in &rule.poses {
                if p >= self.poses.len() {
                    return Err(TaxonomyError {
                        code: "taxonomy/unknown-pose",
                        message: format!(
                            "fault {:?} references pose index {p} but only {} poses exist",
                            rule.ident,
                            self.poses.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serialises to the versioned text artifact format.
    pub fn to_artifact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("parts {}\n", self.parts));
        out.push_str(&format!("stages {}\n", self.stages.len()));
        for s in &self.stages {
            out.push_str(&format!("stage {}|{}\n", s.ident, s.display));
        }
        out.push_str(&format!("poses {}\n", self.poses.len()));
        for p in &self.poses {
            out.push_str(&format!(
                "pose {}|{}|{}\n",
                p.ident, p.display, self.stages[p.stage].ident
            ));
        }
        out.push_str(&format!(
            "initial {}\n",
            self.poses[self.initial_pose].ident
        ));
        if let Some(m) = self.majority_pose {
            out.push_str(&format!("majority {}\n", self.poses[m].ident));
        }
        out.push_str(&format!(
            "table stage_prior rows={} cols={}\n",
            self.stages.len(),
            self.stages.len()
        ));
        for row in &self.stage_prior {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:e}")).collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
        out.push_str(&format!("faults {}\n", self.faults.len()));
        for rule in &self.faults {
            let polarity = match rule.polarity {
                Polarity::Require => "require",
                Polarity::Forbid => "forbid",
            };
            let poses: Vec<&str> = rule
                .poses
                .iter()
                .map(|&p| self.poses[p].ident.as_str())
                .collect();
            out.push_str(&format!(
                "fault {}|{}|{}|{}|{}|{}|{}\n",
                rule.ident,
                polarity,
                self.stages[rule.stage].ident,
                rule.min_frames,
                poses.join(","),
                rule.display,
                rule.advice
            ));
        }
        out
    }

    /// Parses the versioned text artifact format.
    ///
    /// # Errors
    ///
    /// Returns a [`TaxonomyError`] on malformed input or any violated
    /// structural invariant.
    pub fn from_artifact_str(text: &str) -> Result<Self, TaxonomyError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        let magic = lines
            .next()
            .ok_or_else(|| TaxonomyError::format("empty artifact"))?;
        if magic != MAGIC {
            return Err(TaxonomyError::format(format!(
                "bad magic {magic:?}; expected {MAGIC:?}"
            )));
        }
        let mut next = |what: &str| -> Result<&str, TaxonomyError> {
            lines.next().ok_or_else(|| {
                TaxonomyError::format(format!("unexpected end of artifact: expected {what}"))
            })
        };
        let keyword = |line: &str, kw: &str| -> Result<String, TaxonomyError> {
            line.strip_prefix(kw)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| TaxonomyError::format(format!("expected `{kw} ...`, got {line:?}")))
        };
        let count = |line: &str, kw: &str| -> Result<usize, TaxonomyError> {
            keyword(line, kw)?
                .parse::<usize>()
                .map_err(|_| TaxonomyError::format(format!("bad {kw} count in {line:?}")))
        };

        let name = keyword(next("name")?, "name")?;
        let parts = count(next("parts")?, "parts")?;

        let n_stages = count(next("stages")?, "stages")?;
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let body = keyword(next("stage")?, "stage")?;
            let mut fields = body.split('|');
            let (ident, display) = match (fields.next(), fields.next(), fields.next()) {
                (Some(i), Some(d), None) => (i.to_string(), d.to_string()),
                _ => {
                    return Err(TaxonomyError::format(format!(
                        "stage line needs `ident|display`, got {body:?}"
                    )))
                }
            };
            stages.push(StageInfo { ident, display });
        }

        let n_poses = count(next("poses")?, "poses")?;
        let mut poses = Vec::with_capacity(n_poses);
        for _ in 0..n_poses {
            let body = keyword(next("pose")?, "pose")?;
            let mut fields = body.split('|');
            let (ident, display, stage_ident) =
                match (fields.next(), fields.next(), fields.next(), fields.next()) {
                    (Some(i), Some(d), Some(s), None) => (i.to_string(), d.to_string(), s),
                    _ => {
                        return Err(TaxonomyError::format(format!(
                            "pose line needs `ident|display|stage`, got {body:?}"
                        )))
                    }
                };
            let stage = stages
                .iter()
                .position(|s| s.ident == stage_ident)
                .ok_or_else(|| TaxonomyError {
                    code: "taxonomy/partition",
                    message: format!("pose {ident:?} references undefined stage {stage_ident:?}"),
                })?;
            poses.push(PoseInfo {
                ident,
                display,
                stage,
            });
        }

        let pose_lookup = |ident: &str| -> Result<usize, TaxonomyError> {
            poses
                .iter()
                .position(|p| p.ident == ident)
                .ok_or_else(|| TaxonomyError {
                    code: "taxonomy/unknown-pose",
                    message: format!("reference to undefined pose {ident:?}"),
                })
        };

        let initial_pose = pose_lookup(&keyword(next("initial")?, "initial")?)?;
        let mut line = next("majority or stage_prior table")?.to_string();
        let majority_pose = if let Ok(ident) = keyword(&line, "majority") {
            let m = pose_lookup(&ident)?;
            line = next("stage_prior table")?.to_string();
            Some(m)
        } else {
            None
        };

        let header = keyword(&line, "table stage_prior")?;
        let expected = format!("rows={n} cols={n}", n = stages.len());
        if header != expected {
            return Err(TaxonomyError::format(format!(
                "stage_prior header {header:?}; expected {expected:?}"
            )));
        }
        let mut stage_prior = Vec::with_capacity(stages.len());
        for _ in 0..stages.len() {
            let row_line = next("stage_prior row")?;
            let row: Result<Vec<f64>, TaxonomyError> = row_line
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<f64>().map_err(|_| {
                        TaxonomyError::format(format!("bad number {tok:?} in stage_prior"))
                    })
                })
                .collect();
            stage_prior.push(row?);
        }

        let n_faults = count(next("faults")?, "faults")?;
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let body = keyword(next("fault")?, "fault")?;
            let fields: Vec<&str> = body.splitn(7, '|').collect();
            let [ident, polarity, stage_ident, min_frames, pose_list, display, advice] = fields[..]
            else {
                return Err(TaxonomyError::format(format!(
                    "fault line needs 7 `|`-separated fields, got {body:?}"
                )));
            };
            let polarity = match polarity {
                "require" => Polarity::Require,
                "forbid" => Polarity::Forbid,
                other => {
                    return Err(TaxonomyError::format(format!(
                        "fault polarity must be require|forbid, got {other:?}"
                    )))
                }
            };
            let stage = stages
                .iter()
                .position(|s| s.ident == stage_ident)
                .ok_or_else(|| TaxonomyError {
                    code: "taxonomy/partition",
                    message: format!("fault {ident:?} references undefined stage {stage_ident:?}"),
                })?;
            let min_frames = min_frames.parse::<usize>().map_err(|_| {
                TaxonomyError::format(format!("bad min_frames {min_frames:?} in fault {ident:?}"))
            })?;
            let rule_poses: Result<Vec<usize>, TaxonomyError> = pose_list
                .split(',')
                .map(|p| pose_lookup(p.trim()))
                .collect();
            faults.push(FaultRule {
                ident: ident.to_string(),
                display: display.to_string(),
                stage,
                polarity,
                poses: rule_poses?,
                min_frames,
                advice: advice.to_string(),
            });
        }
        if let Some(extra) = lines.next() {
            return Err(TaxonomyError::format(format!(
                "trailing content after faults: {extra:?}"
            )));
        }

        Taxonomy::new(
            name,
            parts,
            stages,
            poses,
            initial_pose,
            majority_pose,
            stage_prior,
            faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Taxonomy {
        Taxonomy::new(
            "toy-squat",
            5,
            vec![
                StageInfo {
                    ident: "Standing".into(),
                    display: "standing tall".into(),
                },
                StageInfo {
                    ident: "Squatting".into(),
                    display: "in the squat".into(),
                },
            ],
            vec![
                PoseInfo {
                    ident: "Upright".into(),
                    display: "upright & arms down".into(),
                    stage: 0,
                },
                PoseInfo {
                    ident: "ArmsForward".into(),
                    display: "upright & arms forward".into(),
                    stage: 0,
                },
                PoseInfo {
                    ident: "HalfSquat".into(),
                    display: "half squat".into(),
                    stage: 1,
                },
                PoseInfo {
                    ident: "DeepSquat".into(),
                    display: "deep squat".into(),
                    stage: 1,
                },
            ],
            0,
            Some(1),
            vec![vec![0.5, 0.5], vec![0.0, 1.0]],
            vec![
                FaultRule {
                    ident: "NoDepth".into(),
                    display: "squat never reaches depth".into(),
                    stage: 1,
                    polarity: Polarity::Require,
                    poses: vec![3],
                    min_frames: 2,
                    advice: "sink the hips below parallel".into(),
                },
                FaultRule {
                    ident: "ArmsDrop".into(),
                    display: "arms drop mid-rep".into(),
                    stage: 0,
                    polarity: Polarity::Forbid,
                    poses: vec![0],
                    min_frames: 4,
                    advice: "keep the arms raised throughout".into(),
                },
            ],
        )
        .expect("toy taxonomy is valid")
    }

    #[test]
    fn accessors_and_partition() {
        let t = toy();
        assert_eq!(t.pose_count(), 4);
        assert_eq!(t.stage_count(), 2);
        assert_eq!(t.pose_ident(3), "DeepSquat");
        assert_eq!(t.pose_display(1), "upright & arms forward");
        assert_eq!(t.pose_index("HalfSquat"), Some(2));
        assert_eq!(t.pose_index("Nope"), None);
        assert_eq!(t.stage_of_pose(2), 1);
        assert_eq!(t.poses_in_stage(0), vec![0, 1]);
        assert!(t.can_transition(0, 1));
        assert!(!t.can_transition(1, 0));
        assert_eq!(t.initial_pose(), 0);
        assert_eq!(t.majority_pose(), Some(1));
    }

    #[test]
    fn assess_require_and_forbid_polarity() {
        let t = toy();
        // No DeepSquat evidence: rule 0 fires. Only 3 Upright frames:
        // rule 1 (forbid at 4) stays quiet.
        let seq = vec![Some(0), Some(0), Some(0), Some(2), None];
        assert_eq!(t.assess(&seq), vec![0]);
        // Two DeepSquat frames satisfy rule 0 exactly at min_frames;
        // four Upright frames trip the forbid rule exactly at its
        // threshold.
        let seq = vec![Some(0), Some(0), Some(0), Some(0), Some(3), Some(3)];
        assert_eq!(t.assess(&seq), vec![1]);
        // Empty and all-Unknown sequences fire every require rule and
        // no forbid rule.
        assert_eq!(t.assess(&[]), vec![0]);
        assert_eq!(t.assess(&[None, None, None]), vec![0]);
    }

    #[test]
    fn artifact_round_trip() {
        let t = toy();
        let text = t.to_artifact_string();
        assert!(text.starts_with(MAGIC));
        let back = Taxonomy::from_artifact_str(&text).expect("round trip parses");
        assert_eq!(back, t);
        assert_eq!(back.to_artifact_string(), text);
    }

    #[test]
    fn majority_line_is_optional() {
        let mut t = toy();
        t.majority_pose = None;
        let text = t.to_artifact_string();
        assert!(!text.contains("majority"));
        let back = Taxonomy::from_artifact_str(&text).expect("parses without majority");
        assert_eq!(back.majority_pose(), None);
    }

    #[test]
    fn bad_partition_is_rejected() {
        let text = toy().to_artifact_string().replace(
            "pose HalfSquat|half squat|Squatting",
            "pose HalfSquat|half squat|Flying",
        );
        let err = Taxonomy::from_artifact_str(&text).unwrap_err();
        assert_eq!(err.code, "taxonomy/partition");

        // An interleaved partition (pose of an earlier stage after a
        // later stage's pose) is structurally invalid too.
        let t = toy();
        let mut shuffled = t.clone();
        shuffled.poses.swap(1, 2);
        assert_eq!(shuffled.validate().unwrap_err().code, "taxonomy/partition");
    }

    #[test]
    fn bad_row_sum_is_rejected() {
        let text = toy().to_artifact_string().replace("0e0 1e0", "1e-1 1e0");
        let err = Taxonomy::from_artifact_str(&text).unwrap_err();
        assert_eq!(err.code, "taxonomy/row-sum");
    }

    #[test]
    fn unknown_fault_pose_is_rejected() {
        let text = toy()
            .to_artifact_string()
            .replace("|DeepSquat|", "|BackFlip|");
        let err = Taxonomy::from_artifact_str(&text).unwrap_err();
        assert_eq!(err.code, "taxonomy/unknown-pose");
    }

    #[test]
    fn format_errors_are_reported() {
        assert_eq!(
            Taxonomy::from_artifact_str("").unwrap_err().code,
            "taxonomy/format"
        );
        assert_eq!(
            Taxonomy::from_artifact_str("slj-pose-model v1")
                .unwrap_err()
                .code,
            "taxonomy/format"
        );
        let truncated: String = toy()
            .to_artifact_string()
            .lines()
            .take(5)
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(
            Taxonomy::from_artifact_str(&truncated).unwrap_err().code,
            "taxonomy/format"
        );
    }

    #[test]
    fn empty_stage_is_rejected() {
        let t = toy();
        let mut bad = t.clone();
        bad.poses.retain(|p| p.stage == 0);
        // Re-point the dangling references before validating the
        // partition itself.
        bad.initial_pose = 0;
        bad.majority_pose = None;
        bad.faults.clear();
        assert_eq!(bad.validate().unwrap_err().code, "taxonomy/partition");
    }
}
