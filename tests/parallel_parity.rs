//! Deterministic-parity contract of the execution layer: every parallel
//! path — clip fan-out in evaluation and training, the per-pose scoring
//! fan-out, and the row-banded imaging kernels — must produce output
//! **bit-identical** to its serial counterpart at every thread count.
//!
//! The clips mirror `streaming_parity.rs`: a clean jump, one with rare
//! poses, and one with an injected standards fault, so the parity claim
//! covers the Unknown/carry-forward paths too.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::evaluation::{evaluate, evaluate_with};
use slj_repro::core::model::PoseModel;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::core::training::Trainer;
use slj_repro::imaging::background::{BackgroundSubtractor, ExtractScratch};
use slj_repro::imaging::binary::BinaryImage;
use slj_repro::imaging::filter::{
    box_filter_gray, box_filter_gray_par, median_filter_binary, median_filter_binary_par_into,
    median_filter_gray, median_filter_gray_par_into, FilterScratch,
};
use slj_repro::imaging::image::GrayImage;
use slj_repro::runtime::{Parallelism, ThreadPool};
use slj_repro::sim::{ClipSpec, JumpFault, JumpSimulator, LabeledClip, NoiseConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn trained_model(sim: &JumpSimulator) -> PoseModel {
    let noise = NoiseConfig::default();
    let train: Vec<_> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 36,
                seed: i,
                noise,
                rare_poses: i % 2 == 1,
                ..ClipSpec::default()
            })
        })
        .collect();
    Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&train)
        .expect("train")
}

/// Clean jump, rare poses, injected fault — the same trio the
/// streaming-parity suite pins down.
fn test_clips(sim: &JumpSimulator) -> Vec<LabeledClip> {
    let noise = NoiseConfig::default();
    [
        ClipSpec {
            total_frames: 40,
            seed: 500,
            noise,
            ..ClipSpec::default()
        },
        ClipSpec {
            total_frames: 40,
            seed: 501,
            noise,
            rare_poses: true,
            ..ClipSpec::default()
        },
        ClipSpec {
            total_frames: 44,
            seed: 502,
            noise,
            fault: Some(JumpFault::NoCrouch),
            ..ClipSpec::default()
        },
    ]
    .iter()
    .map(|spec| sim.generate_clip(spec))
    .collect()
}

#[test]
fn evaluate_is_bit_identical_across_thread_counts() {
    let sim = JumpSimulator::new(909);
    let model = trained_model(&sim);
    let clips = test_clips(&sim);
    let serial = evaluate_with(&model, &clips, &ThreadPool::serial()).expect("serial");
    for threads in THREAD_COUNTS {
        let par = evaluate_with(&model, &clips, &ThreadPool::fixed(threads)).expect("parallel");
        assert_eq!(par.confusion, serial.confusion, "x{threads}: confusion");
        assert_eq!(par.clips.len(), serial.clips.len());
        for (i, (p, s)) in par.clips.iter().zip(&serial.clips).enumerate() {
            assert_eq!(p.clip_id, s.clip_id);
            assert_eq!(p.correct, s.correct, "x{threads} clip {i}: correct");
            assert_eq!(p.unknown, s.unknown, "x{threads} clip {i}: unknown");
            assert_eq!(p.truth, s.truth);
            // PoseEstimate equality covers the full posteriors, so this
            // is a bitwise claim, not an argmax-level one.
            for (t, (pe, se)) in p.estimates.iter().zip(&s.estimates).enumerate() {
                assert_eq!(pe, se, "x{threads} clip {i}: diverges at frame {t}");
            }
        }
    }
    // The default entry point routes through the same pool machinery.
    let auto = evaluate(&model, &clips).expect("auto");
    assert_eq!(auto.confusion, serial.confusion);
}

#[test]
fn training_extraction_is_bit_identical_across_thread_counts() {
    let sim = JumpSimulator::new(909);
    let clips = test_clips(&sim);
    let trainer = Trainer::new(PipelineConfig::default()).expect("config");
    let serial = trainer
        .clone()
        .with_parallelism(Parallelism::Serial)
        .extract_sequences(&clips)
        .expect("serial extraction");
    let serial_model = trainer
        .clone()
        .with_parallelism(Parallelism::Serial)
        .train(&clips)
        .expect("serial train");
    for threads in THREAD_COUNTS {
        let par = trainer
            .clone()
            .with_parallelism(Parallelism::Fixed(threads));
        assert_eq!(
            par.extract_sequences(&clips).expect("parallel extraction"),
            serial,
            "x{threads}: extracted sequences diverge"
        );
        let par_model = par.train(&clips).expect("parallel train");
        assert_eq!(
            par_model.tables(),
            serial_model.tables(),
            "x{threads}: learned tables diverge"
        );
    }
}

#[test]
fn pose_scoring_is_bit_identical_across_thread_counts() {
    let sim = JumpSimulator::new(909);
    let model = trained_model(&sim);
    let clips = test_clips(&sim);
    for (i, clip) in clips.iter().enumerate() {
        let mut processor =
            FrameProcessor::new(clip.background.clone(), model.config()).expect("processor");
        let features: Vec<_> = clip
            .frames
            .iter()
            .map(|f| processor.process(f).expect("process").features)
            .collect();
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::fixed(threads);
            // Per-pose scoring fan-out.
            for (t, fv) in features.iter().enumerate() {
                let serial = model.observation_likelihood(fv).expect("serial");
                let par = model.observation_likelihood_par(fv, &pool).expect("par");
                assert_eq!(serial.len(), par.len());
                for (pose, (a, b)) in serial.iter().zip(&par).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "x{threads} clip {i} frame {t}: pose {pose} likelihood"
                    );
                }
            }
            // Stateful classifier with fanned-out scoring.
            let mut serial_clf = model.start_clip();
            let mut par_clf = model.start_clip();
            for (t, fv) in features.iter().enumerate() {
                let a = serial_clf.step(fv).expect("step");
                let b = par_clf.step_par(fv, &pool).expect("step_par");
                assert_eq!(a, b, "x{threads} clip {i}: step diverges at frame {t}");
            }
            // Offline paths with fanned-out per-frame likelihoods.
            assert_eq!(
                model.decode_clip_par(&features, &pool).expect("decode par"),
                model.decode_clip(&features).expect("decode"),
                "x{threads} clip {i}: decode diverges"
            );
            assert_eq!(
                model.smooth_clip_par(&features, &pool).expect("smooth par"),
                model.smooth_clip(&features).expect("smooth"),
                "x{threads} clip {i}: smooth diverges"
            );
        }
    }
}

/// Observability must never perturb results: with metrics attached to
/// the pool and the session, and a ring tracer emitting one decision
/// event per frame, every estimate is bit-identical to the unobserved
/// run — at one worker and at eight.
#[test]
fn tracing_enabled_is_bit_identical_to_disabled() {
    use slj_repro::core::engine::JumpSession;
    use slj_repro::obs::{Registry, Tracer, Value};

    let sim = JumpSimulator::new(909);
    let model = trained_model(&sim);
    let clips = test_clips(&sim);
    let plain = evaluate_with(&model, &clips, &ThreadPool::serial()).expect("plain");
    for threads in [1usize, 8] {
        let registry = Registry::new();
        let pool = ThreadPool::fixed(threads).observed(&registry);
        let observed = evaluate_with(&model, &clips, &pool).expect("observed");
        assert_eq!(observed.confusion, plain.confusion, "x{threads}: confusion");
        for (i, (o, p)) in observed.clips.iter().zip(&plain.clips).enumerate() {
            assert_eq!(
                o.estimates, p.estimates,
                "x{threads} clip {i}: observed evaluation diverges"
            );
        }
        assert!(!registry.is_empty(), "pool metrics recorded nothing");
    }
    // Streaming sessions: tracer + metrics on vs everything off.
    for (i, clip) in clips.iter().enumerate() {
        let registry = Registry::new();
        let (tracer, ring) = Tracer::ring(4 * clip.len());
        let mut traced = JumpSession::new(&model, clip.background.clone()).expect("traced");
        traced.attach_metrics(&registry);
        traced.set_tracer(tracer);
        let mut untraced = JumpSession::new(&model, clip.background.clone()).expect("untraced");
        for (t, frame) in clip.frames.iter().enumerate() {
            let a = traced.push_frame(frame).expect("traced push");
            let b = untraced.push_frame(frame).expect("untraced push");
            assert_eq!(a, b, "clip {i}: traced session diverges at frame {t}");
        }
        let events = ring.drain();
        assert_eq!(events.len(), clip.len(), "clip {i}: one event per frame");
        assert_eq!(ring.dropped(), 0);
        for (t, event) in events.iter().enumerate() {
            assert_eq!(event.name, "frame.decision");
            assert_eq!(event.field("frame"), Some(Value::U64(t as u64)));
        }
    }
}

/// The rewritten hot-path kernels (sliding-histogram medians,
/// bit-parallel thinning, fused extraction) against the retained
/// `_reference` implementations on real simulator fixtures — the
/// integration-level half of the kernel parity claim (the in-crate unit
/// tests cover randomized inputs).
#[test]
fn rewritten_kernels_match_reference_implementations() {
    use slj_repro::imaging::filter::{
        median_filter_binary_into, median_filter_binary_reference, median_filter_gray_reference,
    };
    use slj_repro::skeleton::thinning::{zhang_suen_into, zhang_suen_reference, ThinningScratch};

    let sim = JumpSimulator::new(909);
    let clips = test_clips(&sim);
    for (i, clip) in clips.iter().enumerate() {
        let mask = clip.truth[clip.len() / 2].silhouette.clone();
        let gray = mask.to_gray();
        let frame = &clip.frames[clip.len() / 2];
        let sub = BackgroundSubtractor::new(
            clip.background.clone(),
            PipelineConfig::default().extraction,
        )
        .expect("subtractor");
        let mut fscratch = FilterScratch::new();
        let mut escratch = ExtractScratch::new();
        let mut tscratch = ThinningScratch::new();
        let mut bin_out = BinaryImage::new(1, 1);

        for window in [3usize, 5] {
            // Gray median: sliding histogram vs per-pixel rebuild.
            assert_eq!(
                median_filter_gray(&gray, window).expect("gray median"),
                median_filter_gray_reference(&gray, window).expect("gray reference"),
                "clip {i} window {window}: gray median"
            );
            // Binary median: sliding counts vs integral image.
            median_filter_binary_into(&mask, window, &mut bin_out, &mut fscratch)
                .expect("binary median");
            assert_eq!(
                bin_out,
                median_filter_binary_reference(&mask, window).expect("binary reference"),
                "clip {i} window {window}: binary median"
            );
        }

        // Thinning: bit-parallel vs scalar, including pass/removal stats.
        let smoothed = median_filter_binary(&mask, 3).expect("median");
        let reference = zhang_suen_reference(&smoothed);
        let mut thin_out = BinaryImage::new(1, 1);
        let (passes, removed) = zhang_suen_into(&smoothed, &mut thin_out, &mut tscratch);
        assert_eq!(thin_out, reference.skeleton, "clip {i}: thinning skeleton");
        assert_eq!(passes, reference.passes, "clip {i}: thinning passes");
        assert_eq!(removed, reference.removed, "clip {i}: thinning removals");

        // Fused extraction vs the unfused reference pipeline.
        sub.extract_into(frame, &mut bin_out, &mut escratch)
            .expect("extract");
        let mut reference_mask = BinaryImage::new(1, 1);
        sub.extract_reference_into(frame, &mut reference_mask, &mut escratch)
            .expect("extract reference");
        assert_eq!(bin_out, reference_mask, "clip {i}: fused extraction");
    }
}

#[test]
fn imaging_kernels_are_bit_identical_across_thread_counts() {
    let sim = JumpSimulator::new(909);
    let clips = test_clips(&sim);
    for (i, clip) in clips.iter().enumerate() {
        let mask = clip.truth[clip.len() / 2].silhouette.clone();
        let gray = mask.to_gray();
        let frame = clip.frames[clip.len() / 2].clone();
        let sub = BackgroundSubtractor::new(
            clip.background.clone(),
            PipelineConfig::default().extraction,
        )
        .expect("subtractor");
        let serial_median = median_filter_binary(&mask, 3).expect("serial median");
        let serial_gray_median = median_filter_gray(&gray, 3).expect("serial gray median");
        let serial_box = box_filter_gray(&gray, 5).expect("serial box");
        let serial_fg = sub.foreground_matrix(&frame).expect("serial fg");
        let mut bin_out = BinaryImage::new(1, 1);
        let mut gray_out = GrayImage::new(1, 1);
        let mut fscratch = FilterScratch::new();
        let mut escratch = ExtractScratch::new();
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::fixed(threads);
            median_filter_binary_par_into(&mask, 3, &mut bin_out, &mut fscratch, &pool)
                .expect("par median");
            assert_eq!(bin_out, serial_median, "x{threads} clip {i}: binary median");
            median_filter_gray_par_into(&gray, 3, &mut gray_out, &pool).expect("par gray median");
            assert_eq!(
                gray_out, serial_gray_median,
                "x{threads} clip {i}: gray median"
            );
            let par_box = box_filter_gray_par(&gray, 5, &pool).expect("par box");
            assert_eq!(par_box, serial_box, "x{threads} clip {i}: box filter");
            sub.foreground_matrix_par_into(&frame, &mut gray_out, &mut escratch, &pool)
                .expect("par fg");
            assert_eq!(
                gray_out, serial_fg,
                "x{threads} clip {i}: foreground matrix"
            );
        }
    }
}
