//! Seeded violation for `robustness/panic-reachable-from-api`: the pub
//! API panics two frames down, not at its own site, so only the
//! interprocedural rule can see it from the API surface.

/// Scores a clip; panics on an empty slice — but only transitively.
pub fn evaluate_clip(samples: &[f64]) -> f64 {
    best_sample(samples)
}

fn best_sample(samples: &[f64]) -> f64 {
    *samples.first().unwrap()
}
