//! Clean fixture: Result/Option-returning helpers, no panics, no clock
//! reads, no allocations behind hot entry points, no lock cycles. Every
//! interprocedural rule must stay silent here.

/// Scores a clip without any flagged effect.
pub fn evaluate_clip(samples: &[f64]) -> Option<f64> {
    mean(samples)
}

fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut total = 0.0;
    for s in samples {
        total += s;
    }
    Some(total / samples.len() as f64)
}
