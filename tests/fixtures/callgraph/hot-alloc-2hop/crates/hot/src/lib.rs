//! Seeded violation for `perf/transitive-hot-path-alloc`: a hot `_into`
//! kernel reaches `vec!` two calls down.

/// The hot kernel: allocation-free at its own site.
pub fn blur_rows_into(src: &[u8], out: &mut Vec<u8>) {
    staging_pass(src, out);
}

fn staging_pass(src: &[u8], out: &mut Vec<u8>) {
    let scratch = scratch_rows(src.len());
    out.extend_from_slice(&scratch);
}

fn scratch_rows(n: usize) -> Vec<u8> {
    vec![0u8; n]
}
