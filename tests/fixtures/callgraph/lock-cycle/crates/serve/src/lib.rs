//! Seeded violation for `concurrency/lock-order`: `publish` and
//! `reclaim` acquire the same two mutexes in opposite orders (AB/BA),
//! the classic deadlock shape.

use std::sync::Mutex;

/// Two queues guarded by separate locks.
pub struct Queues {
    intake: Mutex<Vec<u64>>,
    results: Mutex<Vec<u64>>,
}

impl Queues {
    /// Acquires intake, then results.
    pub fn publish(&self) {
        let intake = self.intake.lock();
        let results = self.results.lock();
        drop(results);
        drop(intake);
    }

    /// Acquires results, then intake — the reversed order.
    pub fn reclaim(&self) {
        let results = self.results.lock();
        let intake = self.intake.lock();
        drop(intake);
        drop(results);
    }
}
