//! Seeded violation for `determinism/wall-clock-reachable`: the
//! streaming entry point reads the wall clock behind a helper.

use std::time::Instant;

/// A streaming session whose entry point is clock-dependent.
pub struct Session {
    frames: u64,
}

impl Session {
    /// The streaming entry point (matched by name).
    pub fn push_frame(&mut self) -> u64 {
        self.frames += 1;
        stamp_ns()
    }
}

fn stamp_ns() -> u64 {
    let t = Instant::now();
    t.elapsed().subsec_nanos() as u64
}
