//! A new exercise is pure data: the toy squat taxonomy fixture goes
//! train → classify → score → save/load → serve → check without a
//! single code change outside its artifact file.
//!
//! The fixture (`tests/fixtures/taxonomy/toy.taxonomy`) defines a
//! 4-pose / 2-stage squat vocabulary with its own fault rules; nothing
//! in the workspace names those poses. The corrupted sibling fixtures
//! pin the artifact auditor's rejection codes.

use slj_repro::check::audit::{audit_model_text, audit_taxonomy_text};
use slj_repro::core::config::PipelineConfig;
use slj_repro::core::model_io;
use slj_repro::core::scoring::assess_with_taxonomy;
use slj_repro::core::training::{Trainer, TrainingFrame, TrainingSequence};
use slj_repro::serve::client::request;
use slj_repro::serve::{Server, ServerConfig};
use slj_repro::skeleton::features::{FeatureCodec, FeatureVector};
use slj_repro::skeleton::keypoints::KeyPoints;
use slj_repro::taxonomy::Taxonomy;

const TOY: &str = include_str!("fixtures/taxonomy/toy.taxonomy");
const BAD_PARTITION: &str = include_str!("fixtures/taxonomy/bad-partition.taxonomy");
const BAD_ROW_SUM: &str = include_str!("fixtures/taxonomy/bad-row-sum.taxonomy");
const BAD_FAULT_POSE: &str = include_str!("fixtures/taxonomy/bad-fault-pose.taxonomy");

fn toy_taxonomy() -> Taxonomy {
    Taxonomy::from_artifact_str(TOY).expect("toy fixture parses")
}

/// Synthetic observation for toy pose `p`: all five body parts land in
/// areas that shift with the pose, so poses are cleanly separable.
fn features_for(pose: usize) -> FeatureVector {
    let n = 8usize;
    let point_in_area = |a: usize| -> (f64, f64) {
        let angle = (a as f64 + 0.5) * std::f64::consts::TAU / n as f64;
        (angle.cos() * 10.0, -angle.sin() * 10.0)
    };
    let kp = KeyPoints {
        waist: Some((0.0, 0.0)),
        head: Some(point_in_area(pose % n)),
        chest: Some(point_in_area((pose + 1) % n)),
        hand: Some(point_in_area((pose + 2) % n)),
        knee: Some(point_in_area((pose + 3) % n)),
        foot: Some(point_in_area((pose + 4) % n)),
    };
    FeatureCodec::new(8).encode(&kp)
}

/// A full labelled squat rep: both standing poses, then both squat
/// poses, with the stage partition the taxonomy declares.
fn good_rep(taxonomy: &Taxonomy) -> TrainingSequence {
    let poses = [0usize, 0, 1, 1, 2, 2, 3, 3, 3, 2];
    TrainingSequence {
        frames: poses
            .into_iter()
            .map(|pose| TrainingFrame {
                stage: taxonomy.stage_of_pose(pose),
                pose,
                features: features_for(pose),
            })
            .collect(),
    }
}

fn toy_model() -> slj_repro::core::model::PoseModel {
    let taxonomy = toy_taxonomy();
    let config = PipelineConfig {
        th_pose: 0.05,
        ..PipelineConfig::default()
    };
    Trainer::new(config)
        .expect("config")
        .with_taxonomy(taxonomy.clone())
        .train_from_sequences(&[good_rep(&taxonomy), good_rep(&taxonomy)])
        .expect("train on toy vocabulary")
}

#[test]
fn toy_taxonomy_trains_classifies_and_scores() {
    let taxonomy = toy_taxonomy();
    assert_eq!(taxonomy.name(), "toy-squat");
    assert_eq!(taxonomy.pose_count(), 4);
    assert_eq!(taxonomy.stage_count(), 2);

    let model = toy_model();
    assert_eq!(model.taxonomy().name(), "toy-squat");
    assert_eq!(model.taxonomy().pose_count(), 4);

    // Classify a rep frame-by-frame; the estimates are toy pose indices.
    let mut clf = model.start_clip();
    let mut recognised = Vec::new();
    for frame in &good_rep(&taxonomy).frames {
        let est = clf.step(&frame.features).expect("step");
        assert!(est.stage < 2, "stage index outside the toy taxonomy");
        if let Some(p) = est.pose {
            assert!(p < 4, "pose index outside the toy taxonomy");
        }
        recognised.push(est.pose);
    }
    // A full rep reaches depth: the NoDepth rule must not fire. The
    // fault names resolve through the toy artifact, not the SLJ enums.
    let deep = taxonomy.pose_index("DeepSquat").expect("toy pose");
    assert!(
        recognised.iter().filter(|p| **p == Some(deep)).count() >= 2,
        "classifier never recognised the deep squat: {recognised:?}"
    );
    let faults = assess_with_taxonomy(&taxonomy, &recognised);
    assert!(
        faults.iter().all(|f| f.ident != "NoDepth"),
        "full-depth rep flagged NoDepth: {faults:?}"
    );

    // A shallow rep (never deeper than HalfSquat) fires NoDepth with the
    // artifact's advice string.
    let shallow: Vec<Option<usize>> = [0usize, 0, 1, 1, 2, 2, 2, 2]
        .into_iter()
        .map(Some)
        .collect();
    let faults = assess_with_taxonomy(&taxonomy, &shallow);
    assert_eq!(faults.len(), 1, "expected exactly NoDepth: {faults:?}");
    assert_eq!(faults[0].ident, "NoDepth");
    assert_eq!(faults[0].stage_display, "in the squat");
    assert_eq!(faults[0].advice, "sink the hips below parallel");
}

#[test]
fn toy_model_round_trips_with_its_taxonomy_embedded() {
    let model = toy_model();
    let text = model_io::to_string(&model);
    assert!(
        text.contains("name toy-squat"),
        "taxonomy block missing from the model file"
    );
    let reloaded = model_io::from_str(&text).expect("reload");
    assert_eq!(reloaded.taxonomy().name(), "toy-squat");
    assert_eq!(reloaded.taxonomy().pose_count(), 4);
    assert_eq!(model_io::to_string(&reloaded), text, "round-trip drifted");

    // The classifier reloads to the same decisions.
    let taxonomy = toy_taxonomy();
    let (mut a, mut b) = (model.start_clip(), reloaded.start_clip());
    for frame in &good_rep(&taxonomy).frames {
        let ea = a.step(&frame.features).expect("step");
        let eb = b.step(&frame.features).expect("step");
        assert_eq!(ea.pose, eb.pose);
        assert_eq!(ea.posterior, eb.posterior);
    }

    // The auditor shape-checks the file against the embedded taxonomy.
    let findings = audit_model_text("toy.model", &text, false);
    assert!(findings.is_empty(), "audit findings: {findings:?}");
}

#[test]
fn serve_reads_counts_and_fault_names_from_the_toy_taxonomy() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServerConfig::default()
    };
    let handle = Server::bind(config, toy_model())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr.to_string();

    // Session creation advertises the toy pose count and rejects a
    // client expecting the SLJ vocabulary.
    let resp = request(
        &addr,
        "POST",
        "/v1/sessions",
        "application/json",
        b"{}",
        10_000,
    )
    .expect("create session");
    assert_eq!(resp.status, 201, "body: {}", resp.text());
    assert!(resp.text().contains("\"poses\":4"), "body: {}", resp.text());

    let mismatch = request(
        &addr,
        "POST",
        "/v1/sessions",
        "application/json",
        b"{\"poses\":22}",
        10_000,
    )
    .expect("mismatched create");
    assert_eq!(mismatch.status, 422, "body: {}", mismatch.text());
    assert!(mismatch.text().contains("pose_count_mismatch"));

    // Closing the (empty) session assesses with the toy fault rules:
    // zero frames of DeepSquat evidence fires NoDepth, in toy terms.
    let session_id: u64 = resp
        .text()
        .split("\"session\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("session id");
    let closed = request(
        &addr,
        "DELETE",
        &format!("/v1/sessions/{session_id}"),
        "application/json",
        b"",
        10_000,
    )
    .expect("delete session");
    assert_eq!(closed.status, 200, "body: {}", closed.text());
    let body = closed.text();
    assert!(
        body.contains("squat never reaches depth") && body.contains("sink the hips below parallel"),
        "toy fault rule missing from assessment: {body}"
    );

    handle.stop().expect("stop");
}

#[test]
fn corrupted_taxonomy_fixtures_are_rejected_with_their_rule_codes() {
    for (text, rule) in [
        (BAD_PARTITION, "taxonomy/partition"),
        (BAD_ROW_SUM, "taxonomy/row-sum"),
        (BAD_FAULT_POSE, "taxonomy/unknown-pose"),
    ] {
        assert!(
            Taxonomy::from_artifact_str(text).is_err(),
            "corrupted fixture parsed"
        );
        let findings = audit_taxonomy_text("fixture.taxonomy", text);
        assert_eq!(findings.len(), 1, "findings for {rule}: {findings:?}");
        assert_eq!(findings[0].rule, rule);
        // `slj check --model` dispatches on the taxonomy magic too.
        let via_model = audit_model_text("fixture.taxonomy", text, false);
        assert_eq!(via_model[0].rule, rule);
    }
}
