//! Fault-injection tests for the pose-quality diagnostics layer.
//!
//! Clean simulated clips must come through with a high clip score and
//! **zero** frame flags (the false-positive budget of the CI gate), and
//! each injected corruption — lighting drift, dropped frames, swapped
//! frames — must be flagged with the expected reason code. Reports are
//! bit-identical across thread counts, extending the workspace's
//! determinism contract to the diagnostics.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::engine::JumpSession;
use slj_repro::core::model::PoseModel;
use slj_repro::core::training::Trainer;
use slj_repro::imaging::image::RgbImage;
use slj_repro::imaging::Rgb;
use slj_repro::quality::{QualityConfig, QualityReport, Reason};
use slj_repro::runtime::ThreadPool;
use slj_repro::sim::{ClipSpec, JumpSimulator, LabeledClip, NoiseConfig};

fn trained_model() -> PoseModel {
    let sim = JumpSimulator::new(29);
    let clips: Vec<LabeledClip> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 30,
                seed: 200 + i,
                rare_poses: i % 2 == 1,
                ..ClipSpec::default()
            })
        })
        .collect();
    Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&clips)
        .expect("train")
}

fn clean_clip(seed: u64) -> LabeledClip {
    JumpSimulator::new(29).generate_clip(&ClipSpec {
        total_frames: 30,
        seed,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    })
}

/// Scores `frames` against `background` through the public session API.
fn score(model: &PoseModel, background: &RgbImage, frames: &[RgbImage]) -> QualityReport {
    let mut session = JumpSession::new(model, background.clone()).expect("session");
    session.attach_quality(QualityConfig::default());
    for frame in frames {
        session.push_frame(frame).expect("push");
    }
    session.quality_report().expect("report")
}

fn reason_frames(report: &QualityReport, reason: Reason) -> u32 {
    report.reason_frames[reason as usize]
}

#[test]
fn clean_clips_score_high_with_zero_flags() {
    let model = trained_model();
    for seed in [600, 601, 602] {
        let clip = clean_clip(seed);
        let report = score(&model, &clip.background, &clip.frames);
        assert_eq!(
            report.flagged_frames,
            0,
            "clean clip {seed} flagged: {}",
            report.to_json()
        );
        assert!(
            report.clip_score >= 0.9,
            "clean clip {seed} scored {}",
            report.clip_score
        );
    }
}

#[test]
fn lighting_drift_is_flagged_as_silhouette_spike() {
    let model = trained_model();
    let clip = clean_clip(700);
    // Global illumination saturates mid-clip (a severe exposure blow-out).
    // The extractor's diff normalization absorbs mild uniform drift, but
    // once most pixels clip to near-white the subtraction floods and the
    // foreground count spikes.
    let drift = Rgb::new(200, 200, 200);
    let frames: Vec<RgbImage> = clip
        .frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            if i >= clip.frames.len() / 2 {
                frame.map(|p| p.saturating_add(drift))
            } else {
                frame.clone()
            }
        })
        .collect();
    let report = score(&model, &clip.background, &frames);
    assert!(
        reason_frames(&report, Reason::SilhouetteSpike) > 0,
        "no silhouette_spike in {}",
        report.to_json()
    );
    assert!(report.clip_score < 1.0);
}

#[test]
fn dropped_frames_are_flagged_as_empty_silhouette_run() {
    let model = trained_model();
    let clip = clean_clip(701);
    // Six consecutive frames come back as the bare background — a
    // camera dropout with the jumper out of view.
    let frames: Vec<RgbImage> = clip
        .frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            if (10..16).contains(&i) {
                clip.background.clone()
            } else {
                frame.clone()
            }
        })
        .collect();
    let report = score(&model, &clip.background, &frames);
    assert!(
        reason_frames(&report, Reason::EmptySilhouetteRun) > 0,
        "no empty_silhouette_run in {}",
        report.to_json()
    );
}

#[test]
fn swapped_frames_are_flagged_as_temporal_jump() {
    let model = trained_model();
    let clip = clean_clip(702);
    // Every other frame is vertically flipped from mid-clip on — the
    // silhouette teleports between the true and mirrored positions.
    let frames: Vec<RgbImage> = clip
        .frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            if i >= clip.frames.len() / 2 && i % 2 == 1 {
                let (w, h) = (frame.width(), frame.height());
                RgbImage::from_fn(w, h, |x, y| frame.get(x, h - 1 - y))
            } else {
                frame.clone()
            }
        })
        .collect();
    let report = score(&model, &clip.background, &frames);
    assert!(
        reason_frames(&report, Reason::TemporalJump) > 0,
        "no temporal_jump in {}",
        report.to_json()
    );
}

#[test]
fn reports_are_bit_identical_across_thread_counts() {
    let model = trained_model();
    let mut clips: Vec<LabeledClip> = (0..4).map(|i| clean_clip(800 + i)).collect();
    // Mix in a corrupted clip so determinism covers flagged paths too.
    let dropout = clips[1].background.clone();
    for frame in clips[1].frames.iter_mut().skip(12).take(4) {
        *frame = dropout.clone();
    }
    let run = |threads: usize| -> Vec<QualityReport> {
        ThreadPool::fixed(threads)
            .scoped_map(&clips, |_, clip| {
                score(&model, &clip.background, &clip.frames)
            })
            .expect("scoped_map")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel, "reports diverge across thread counts");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.to_json(), b.to_json(), "serialised reports diverge");
    }
    assert!(serial.iter().any(|r| r.flagged_frames > 0));
}
