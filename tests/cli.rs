//! Smoke test of the `slj` CLI: generate → train → eval → coach, driving
//! the released binary the way a user would.

use std::path::PathBuf;
use std::process::Command;

fn slj_binary() -> PathBuf {
    // Integration tests live next to the binary in target/<profile>/.
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push(format!("slj{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(slj_binary())
        .args(args)
        .output()
        .expect("spawn slj binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn generate_train_eval_coach_round_trip() {
    if !slj_binary().exists() {
        // `cargo test --test cli` can run before the bin target is
        // built in some invocation orders; build it on demand.
        let status = Command::new(env!("CARGO"))
            .args(["build", "--bin", "slj"])
            .status()
            .expect("cargo build --bin slj");
        assert!(status.success(), "failed to build the slj binary");
    }
    let dir = std::env::temp_dir().join("slj_cli_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let data = dir.join("data");
    let model = dir.join("jump.model");

    let (ok, out) = run(&[
        "generate",
        "--out",
        data.to_str().unwrap(),
        "--clips",
        "3",
        "--frames",
        "30",
        "--seed",
        "5",
    ]);
    assert!(ok, "generate failed: {out}");
    assert!(out.contains("clip_002"), "generate output: {out}");

    let (ok, out) = run(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--model",
        model.to_str().unwrap(),
    ]);
    assert!(ok, "train failed: {out}");
    assert!(model.exists(), "model file missing");

    let (ok, out) = run(&[
        "eval",
        "--model",
        model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(ok, "eval failed: {out}");
    assert!(out.contains("overall:"), "eval output: {out}");

    let (ok, out) = run(&[
        "coach",
        "--model",
        model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(ok, "coach failed: {out}");
    assert!(
        out.contains("standard") || out.contains('✗'),
        "coach output: {out}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    if !slj_binary().exists() {
        return; // covered by the main smoke test's build-on-demand
    }
    let (ok, out) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"));
    let (ok, out) = run(&["train"]);
    assert!(!ok);
    assert!(out.contains("--data is required"));
    let (ok, out) = run(&["generate", "--out", "/tmp/x", "--fault", "bogus"]);
    assert!(!ok);
    assert!(out.contains("unknown fault"));
}
