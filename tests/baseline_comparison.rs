//! Cross-crate integration of the GA baseline (the authors' prior
//! system) against the thinning pipeline on identical silhouettes.

use rand::SeedableRng;
use slj_repro::core::config::PipelineConfig;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::ga::{GaConfig, GaFitter};
use slj_repro::sim::body::BodyModel;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[test]
fn both_methods_locate_the_body_on_real_silhouettes() {
    let sim = JumpSimulator::new(1212);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 40,
        seed: 4,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let mut processor =
        FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();

    let frame_idx = 5; // standing phase, easy pose
    let truth = &clip.truth[frame_idx];
    let silhouette = processor
        .extract_silhouette(&clip.frames[frame_idx])
        .unwrap();

    // Thinning pipeline.
    let processed = processor.process_silhouette(&silhouette);
    let kp = processed.keypoints;
    let head = kp.head.expect("head found");
    assert!(
        dist(head, truth.skeleton.head) < 12.0,
        "thinning head {head:?} vs truth {:?}",
        truth.skeleton.head
    );

    // GA baseline, modest budget.
    let body = BodyModel::default();
    let fitter = GaFitter::new(
        body,
        GaConfig {
            population: 40,
            generations: 20,
            ..GaConfig::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let fit = fitter.fit(&silhouette, &mut rng);
    assert!(fit.best_fitness > 0.4, "GA fitness {}", fit.best_fitness);
    let ga_skel = fit.skeleton(&body);
    assert!(
        dist(ga_skel.head, truth.skeleton.head) < 25.0,
        "GA head {:?} vs truth {:?}",
        ga_skel.head,
        truth.skeleton.head
    );
}

#[test]
fn thinning_needs_far_fewer_operations_than_ga() {
    // The paper's motivation quantified: count fitness evaluations the
    // GA consumes vs the single pass the thinning pipeline needs.
    let sim = JumpSimulator::new(1313);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 40,
        seed: 4,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let mut processor =
        FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
    let silhouette = processor.extract_silhouette(&clip.frames[10]).unwrap();

    let fitter = GaFitter::new(BodyModel::default(), GaConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let t_ga = std::time::Instant::now();
    let fit = fitter.fit(&silhouette, &mut rng);
    let ga_time = t_ga.elapsed();

    let t_thin = std::time::Instant::now();
    let _ = processor.process_silhouette(&silhouette);
    let thin_time = t_thin.elapsed();

    assert!(
        fit.evaluations > 1000,
        "GA did {} evaluations",
        fit.evaluations
    );
    assert!(
        ga_time > thin_time * 5,
        "GA ({ga_time:?}) should be much slower than thinning ({thin_time:?})"
    );
}
