//! Integration of fault injection (sim) with standards assessment
//! (core): the system's end use.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::evaluation::evaluate_clip;
use slj_repro::core::scoring::{assess_known_sequence, assess_with_taxonomy};
use slj_repro::core::training::Trainer;
use slj_repro::sim::script::JumpScript;
use slj_repro::sim::{ClipSpec, JumpFault, JumpSimulator, NoiseConfig};

#[test]
fn ground_truth_sequences_score_correctly() {
    // On perfect (ground-truth) pose sequences, detection is exact.
    let base = JumpScript::standard();
    assert!(assess_known_sequence(&base.frame_poses()).is_empty());
    for fault in JumpFault::ALL {
        let bad = fault.apply(&base);
        let findings = assess_known_sequence(&bad.frame_poses());
        assert!(
            findings.iter().any(|d| d.fault == fault),
            "{fault} not detected on ground truth"
        );
    }
}

#[test]
fn predicted_sequences_detect_injected_faults() {
    let sim = JumpSimulator::new(777);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .unwrap();

    // Three attempts per fault, as a tutor would collect. Faults whose
    // replacement poses are close neighbours of the originals (e.g. a
    // waist bend standing in for a knee bend) can be masked by
    // misclassification in unlucky worlds, so the assertions are about
    // aggregate reliability: most attempts flag their fault, and most
    // fault kinds are caught by majority vote.
    let mut total_detections = 0usize;
    let mut majority_faults = 0usize;
    for fault in JumpFault::ALL {
        let mut detections = 0;
        for attempt in 0..3u64 {
            let clip = sim.generate_clip(&ClipSpec {
                total_frames: 44,
                seed: 9000 + fault as u64 * 10 + attempt,
                noise,
                fault: Some(fault),
                ..ClipSpec::default()
            });
            let report = evaluate_clip(&model, &clip).unwrap();
            let predicted: Vec<_> = report.estimates.iter().map(|e| e.pose).collect();
            if assess_with_taxonomy(model.taxonomy(), &predicted)
                .iter()
                .any(|d| d.ident == format!("{fault:?}"))
            {
                detections += 1;
            }
        }
        total_detections += detections;
        if detections >= 2 {
            majority_faults += 1;
        }
    }
    assert!(
        total_detections >= 9,
        "only {total_detections}/15 faulty attempts flagged their fault"
    );
    assert!(
        majority_faults >= 4,
        "only {majority_faults}/5 fault kinds detected by 2-of-3 majority"
    );
}

#[test]
fn clean_jumps_rarely_raise_alarms() {
    let sim = JumpSimulator::new(888);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .unwrap();
    let mut false_alarms = 0usize;
    const CLIPS: usize = 4;
    for i in 0..CLIPS as u64 {
        let clip = sim.generate_clip(&ClipSpec {
            total_frames: 44,
            seed: 9500 + i,
            noise,
            ..ClipSpec::default()
        });
        let report = evaluate_clip(&model, &clip).unwrap();
        let predicted: Vec<_> = report.estimates.iter().map(|e| e.pose).collect();
        false_alarms += assess_with_taxonomy(model.taxonomy(), &predicted).len();
    }
    assert!(
        false_alarms <= CLIPS,
        "too many false alarms on clean jumps: {false_alarms} over {CLIPS} clips"
    );
}
