//! End-to-end integration: simulate → extract → thin → encode → train →
//! classify, across crate boundaries.

use slj_repro::core::config::{PipelineConfig, TemporalMode};
use slj_repro::core::evaluation::{evaluate, evaluate_clip};
use slj_repro::core::training::Trainer;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn small_world() -> (
    slj_repro::core::model::PoseModel,
    Vec<slj_repro::sim::LabeledClip>,
) {
    let sim = JumpSimulator::new(404);
    let noise = NoiseConfig::default();
    let train: Vec<_> = (0..5)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 40,
                seed: i,
                noise,
                rare_poses: i % 2 == 1,
                ..ClipSpec::default()
            })
        })
        .collect();
    let test: Vec<_> = (0..2)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 40,
                seed: 100 + i,
                noise,
                ..ClipSpec::default()
            })
        })
        .collect();
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&train)
        .expect("training succeeds");
    (model, test)
}

#[test]
fn full_pipeline_beats_chance_by_wide_margin() {
    let (model, test) = small_world();
    let report = evaluate(&model, &test).expect("evaluation succeeds");
    // Chance is 1/22 ≈ 4.5%; even this small training set must land far
    // above it.
    assert!(
        report.overall_accuracy() > 0.45,
        "accuracy {:.3} too low",
        report.overall_accuracy()
    );
}

#[test]
fn classification_is_deterministic() {
    let (model, test) = small_world();
    let a = evaluate_clip(&model, &test[0]).unwrap();
    let b = evaluate_clip(&model, &test[0]).unwrap();
    assert_eq!(a.correct, b.correct);
    for (x, y) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(x.pose, y.pose);
        assert_eq!(x.stage, y.stage);
    }
}

#[test]
fn posteriors_are_probability_distributions() {
    let (model, test) = small_world();
    let report = evaluate_clip(&model, &test[0]).unwrap();
    for est in &report.estimates {
        let sum: f64 = est.posterior.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "pose posterior sums to {sum}");
        assert!(est
            .posterior
            .iter()
            .all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        let ssum: f64 = est.stage_posterior.iter().sum();
        assert!((ssum - 1.0).abs() < 1e-6, "stage posterior sums to {ssum}");
    }
}

#[test]
fn predicted_stages_are_monotone_in_time() {
    // The left-to-right stage chain must never move backwards.
    let (model, test) = small_world();
    let report = evaluate_clip(&model, &test[0]).unwrap();
    // Count frame-to-frame *down* transitions: a single spurious early
    // spike should cost one, not taint every following frame.
    let mut down_moves = 0usize;
    for w in report.estimates.windows(2) {
        if w[1].stage < w[0].stage {
            down_moves += 1;
        }
    }
    // The stage *chain* is structurally left-to-right, but the argmax of
    // the soft posterior can wobble when a pose from an earlier stage
    // re-gains likelihood; it must not wobble often.
    assert!(
        down_moves <= report.estimates.len() / 8,
        "{down_moves} backward stage transitions in {} frames",
        report.estimates.len()
    );
}

#[test]
fn temporal_model_beats_static_model() {
    let sim = JumpSimulator::new(505);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let full = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .unwrap();
    let static_cfg = PipelineConfig {
        temporal: TemporalMode::Static,
        ..PipelineConfig::default()
    };
    let static_model = Trainer::new(static_cfg)
        .expect("config")
        .train(&data.train)
        .unwrap();
    let acc_full = evaluate(&full, &data.test).unwrap().overall_accuracy();
    let acc_static = evaluate(&static_model, &data.test)
        .unwrap()
        .overall_accuracy();
    assert!(
        acc_full > acc_static + 0.05,
        "temporal {acc_full:.3} should clearly beat static {acc_static:.3}"
    );
}

#[test]
fn headline_dataset_matches_papers_shape() {
    // The full paper-sized run: 12 clips / 522 frames training, 3 clips /
    // 135 frames test, accuracy in the vicinity of the paper's 81-87%.
    let sim = JumpSimulator::new(20080617);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    assert_eq!(data.train_frames(), 522);
    assert_eq!(data.test_frames(), 135);
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .unwrap();
    let report = evaluate(&model, &data.test).unwrap();
    let overall = report.overall_accuracy();
    assert!(
        (0.72..=0.97).contains(&overall),
        "overall accuracy {overall:.3} far from the paper's band"
    );
    for (i, acc) in report.per_clip_accuracy().into_iter().enumerate() {
        assert!(acc > 0.6, "clip {i} collapsed to {acc:.3}");
    }
}
