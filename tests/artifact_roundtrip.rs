//! Artefact round-trips: rendered frames survive PPM/PGM serialisation
//! and classify identically after reloading — the workflow of dumping a
//! clip to disk and analysing it later.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::imaging::io::{read_pgm, read_ppm, write_pgm, write_ppm};
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

#[test]
fn frames_round_trip_through_ppm() {
    let sim = JumpSimulator::new(31);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 20,
        seed: 2,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    for frame in clip.frames.iter().step_by(5) {
        let mut buf = Vec::new();
        write_ppm(&mut buf, frame).unwrap();
        let back = read_ppm(buf.as_slice()).unwrap();
        assert_eq!(&back, frame);
    }
}

#[test]
fn silhouettes_round_trip_through_pgm() {
    let sim = JumpSimulator::new(32);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 20,
        seed: 3,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    for truth in clip.truth.iter().step_by(7) {
        let gray = truth.silhouette.to_gray();
        let mut buf = Vec::new();
        write_pgm(&mut buf, &gray).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back, gray);
    }
}

#[test]
fn reloaded_frames_classify_identically() {
    let sim = JumpSimulator::new(33);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 24,
        seed: 4,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let mut processor =
        FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
    for frame in clip.frames.iter().step_by(4) {
        let direct = processor.process(frame).unwrap();
        let mut buf = Vec::new();
        write_ppm(&mut buf, frame).unwrap();
        let reloaded = read_ppm(buf.as_slice()).unwrap();
        let indirect = processor.process(&reloaded).unwrap();
        assert_eq!(direct.silhouette, indirect.silhouette);
        assert_eq!(direct.features, indirect.features);
    }
}
