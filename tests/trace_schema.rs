//! Schema check for `slj trace` JSONL output, driving the released
//! binary the way CI's trace-smoke job does: generate a clip set, train
//! a model, trace it, and validate every emitted line — one JSON object
//! per frame, versioned (`"schema":3`), with every required key always
//! present.

use std::path::PathBuf;
use std::process::Command;

fn slj_binary() -> PathBuf {
    // Integration tests live next to the binary in target/<profile>/.
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push(format!("slj{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(slj_binary())
        .args(args)
        .output()
        .expect("spawn slj binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Keys every trace record must carry, in emission order.
const REQUIRED_KEYS: [&str; 17] = [
    "schema",
    "clip",
    "frame",
    "pipeline_ns",
    "pose",
    "committed",
    "posterior",
    "best_prob",
    "th_margin",
    "accepted",
    "majority_exempt",
    "unknown_reason",
    "carry_forward",
    "stage",
    "stage_posterior",
    "foreground_px",
    "quality_flags",
];

/// Pipeline-step keys every record's `pipeline_ns` object must contain.
const STAGE_KEYS: [&str; 8] = [
    "background_subtraction",
    "median_filter",
    "largest_component",
    "thinning",
    "graph_cleanup",
    "keypoints",
    "features",
    "dbn_step",
];

#[test]
fn trace_jsonl_has_one_schema_stable_record_per_frame() {
    if !slj_binary().exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "--bin", "slj"])
            .status()
            .expect("cargo build --bin slj");
        assert!(status.success(), "failed to build the slj binary");
    }
    let dir = std::env::temp_dir().join("slj_trace_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let data = dir.join("data");
    let model = dir.join("jump.model");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");

    let clips = 2usize;
    let frames = 30usize;
    let (ok, out) = run(&[
        "generate",
        "--out",
        data.to_str().unwrap(),
        "--clips",
        &clips.to_string(),
        "--frames",
        &frames.to_string(),
        "--seed",
        "11",
    ]);
    assert!(ok, "generate failed: {out}");
    let (ok, out) = run(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--model",
        model.to_str().unwrap(),
    ]);
    assert!(ok, "train failed: {out}");
    let (ok, out) = run(&[
        "trace",
        "--model",
        model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "trace failed: {out}");

    let jsonl = std::fs::read_to_string(&trace).expect("read trace.jsonl");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), clips * frames, "expected one record per frame");
    for (n, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with("{\"schema\":3,") && line.ends_with('}'),
            "line {n}: not a versioned JSON object: {line}"
        );
        // `slj trace` attaches the quality analyzer by default, so both
        // schema-3 fields must carry values, not nulls.
        assert!(
            line.contains("\"quality_flags\":["),
            "line {n}: quality_flags not scored: {line}"
        );
        assert!(
            !line.contains("\"foreground_px\":null"),
            "line {n}: foreground_px missing: {line}"
        );
        for key in REQUIRED_KEYS {
            assert!(
                line.contains(&format!("\"{key}\":")),
                "line {n}: missing key {key:?}: {line}"
            );
        }
        for stage in STAGE_KEYS {
            assert!(
                line.contains(&format!("\"{stage}\":")),
                "line {n}: pipeline_ns missing {stage:?}: {line}"
            );
        }
        // clip/frame indices follow emission order.
        let clip_idx = n / frames;
        let frame_idx = n % frames;
        assert!(
            line.contains(&format!("\"clip\":{clip_idx},\"frame\":{frame_idx},")),
            "line {n}: wrong clip/frame indices: {line}"
        );
    }

    // The metrics snapshot rides along and is itself versioned.
    let snapshot = std::fs::read_to_string(&metrics).expect("read metrics.json");
    assert!(snapshot.starts_with("{\"schema\":1,\"metrics\":{"));
    for metric in [
        "engine.frames",
        "engine.frame.total_ns",
        "engine.pipeline.dbn_step.ns",
        "bayes.filter.step_ns",
        "bayes.filter.factor_cells",
    ] {
        assert!(
            snapshot.contains(&format!("\"{metric}\":")),
            "metrics snapshot missing {metric:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
