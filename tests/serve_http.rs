//! End-to-end tests for the serving layer: a real server on an
//! ephemeral loopback port, exercised through real sockets.
//!
//! The central assertion is the *bit-identical wire contract*: the
//! decision records `/v1/evaluate` and the streaming session endpoints
//! send over HTTP are byte-for-byte what an in-process [`JumpSession`]
//! produces for the same clip and model.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::engine::JumpSession;
use slj_repro::core::model::PoseModel;
use slj_repro::core::scoring::assess_with_taxonomy;
use slj_repro::core::training::Trainer;
use slj_repro::serve::client::request;
use slj_repro::serve::loadgen::{self, synthesize_body};
use slj_repro::serve::{wire, LoadgenConfig, Server, ServerConfig};
use slj_repro::sim::{ClipSpec, JumpSimulator, LabeledClip};

fn trained_model() -> PoseModel {
    let sim = JumpSimulator::new(41);
    let clips: Vec<LabeledClip> = (0..3)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 24,
                seed: 100 + i,
                ..ClipSpec::default()
            })
        })
        .collect();
    Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&clips)
        .expect("train")
}

fn test_clip() -> LabeledClip {
    JumpSimulator::new(41).generate_clip(&ClipSpec {
        total_frames: 24,
        seed: 500,
        ..ClipSpec::default()
    })
}

fn clip_body(clip: &LabeledClip) -> Vec<u8> {
    let mut refs = vec![&clip.background];
    refs.extend(clip.frames.iter());
    wire::encode_frames(&refs)
}

/// The decision records an in-process session emits for `clip` —
/// serialised through the same `wire::decision_json` the server uses —
/// plus the recognised pose sequence for the fault assessment.
fn expected_decisions(model: &PoseModel, clip: &LabeledClip) -> (Vec<String>, Vec<Option<usize>>) {
    let mut session = JumpSession::new(model, clip.background.clone()).expect("session");
    let mut decisions = Vec::new();
    let mut poses = Vec::new();
    for (i, frame) in clip.frames.iter().enumerate() {
        let estimate = session.push_frame(frame).expect("push");
        let decision = session.last_decision().expect("decision");
        decisions.push(wire::decision_json(
            i as u64,
            &estimate,
            &decision,
            model.taxonomy(),
        ));
        poses.push(estimate.pose);
    }
    (decisions, poses)
}

fn spawn_server(config: ServerConfig, model: PoseModel) -> slj_repro::serve::ServerHandle {
    Server::bind(config, model)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn evaluate_responses_are_bit_identical_to_in_process_sessions() {
    let model = trained_model();
    let clip = test_clip();
    let (expected, poses) = expected_decisions(&model, &clip);

    let handle = spawn_server(quiet_config(), model);
    let addr = handle.addr.to_string();
    let resp = request(
        &addr,
        "POST",
        "/v1/evaluate",
        "application/octet-stream",
        &clip_body(&clip),
        30_000,
    )
    .expect("evaluate request");
    assert_eq!(resp.status, 200, "body: {}", resp.text());

    let text = resp.text();
    let wire_decisions = format!("\"decisions\":[{}]", expected.join(","));
    assert!(
        text.contains(&wire_decisions),
        "server decisions are not bit-identical to the in-process session:\n{text}"
    );
    let faults = wire::faults_json(&assess_with_taxonomy(
        &slj_repro::sim::default_taxonomy(),
        &poses,
    ));
    assert!(
        text.contains(&format!("\"faults\":{faults}")),
        "fault assessment differs:\n{text}"
    );
    handle.stop().expect("stop");
}

#[test]
fn streaming_sessions_match_whole_clip_evaluation() {
    let model = trained_model();
    let clip = test_clip();
    let (expected, _poses) = expected_decisions(&model, &clip);

    let handle = spawn_server(quiet_config(), model);
    let addr = handle.addr.to_string();

    let create = request(
        &addr,
        "POST",
        "/v1/sessions",
        "application/json",
        b"{}",
        30_000,
    )
    .expect("create");
    assert_eq!(create.status, 201, "body: {}", create.text());
    let created = create.text();
    let id: u64 = created
        .trim_start_matches("{\"session\":")
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("session id");

    // Feed the clip in two batches: background + first half, then the
    // rest — the session must carry the DBN posterior across requests.
    let split = clip.frames.len() / 2;
    let mut first: Vec<&slj_repro::imaging::image::RgbImage> = vec![&clip.background];
    first.extend(clip.frames[..split].iter());
    let second: Vec<&slj_repro::imaging::image::RgbImage> = clip.frames[split..].iter().collect();

    let mut streamed = Vec::new();
    for batch in [wire::encode_frames(&first), wire::encode_frames(&second)] {
        let resp = request(
            &addr,
            "POST",
            &format!("/v1/sessions/{id}/frames"),
            "application/octet-stream",
            &batch,
            30_000,
        )
        .expect("frames");
        assert_eq!(resp.status, 200, "body: {}", resp.text());
        streamed.push(resp.text());
    }

    // Concatenate the decision arrays from both batches and compare
    // against the single-shot expectation, byte for byte.
    let all_streamed: String = streamed
        .iter()
        .map(|body| {
            let start = body.find("\"decisions\":[").expect("decisions") + "\"decisions\":[".len();
            let end = body
                .rfind("],\"frames_processed\"")
                .expect("frames_processed");
            body[start..end].to_string()
        })
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join(",");
    assert_eq!(
        all_streamed,
        expected.join(","),
        "streamed decisions diverge from the in-process session"
    );

    let delete = request(
        &addr,
        "DELETE",
        &format!("/v1/sessions/{id}"),
        "application/json",
        b"",
        30_000,
    )
    .expect("delete");
    assert_eq!(delete.status, 200, "body: {}", delete.text());
    assert!(delete.text().contains("\"frames_processed\":24"));

    // The session is gone now.
    let gone = request(
        &addr,
        "DELETE",
        &format!("/v1/sessions/{id}"),
        "application/json",
        b"",
        30_000,
    )
    .expect("second delete");
    assert_eq!(gone.status, 404);
    handle.stop().expect("stop");
}

#[test]
fn saturation_answers_429_without_dropping_connections() {
    let model = trained_model();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = spawn_server(config, model);
    let addr = handle.addr.to_string();
    let body = synthesize_body(24, 41);

    let clients = 8;
    let results: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let body = &body;
                scope.spawn(move || {
                    request(
                        &addr,
                        "POST",
                        "/v1/evaluate",
                        "application/octet-stream",
                        body,
                        60_000,
                    )
                    .expect("no dropped connections under saturation")
                    .status
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    assert_eq!(results.len(), clients);
    for status in &results {
        assert!(
            *status == 200 || *status == 429,
            "unexpected status under saturation: {status}"
        );
    }
    let ok = results.iter().filter(|s| **s == 200).count();
    let rejected = results.iter().filter(|s| **s == 429).count();
    assert!(ok >= 1, "at least the first request must be served");
    assert!(
        rejected >= 1,
        "8 simultaneous clients against 1 worker + depth-1 queue must shed load"
    );
    let report = handle.stop().expect("stop");
    assert_eq!(report.rejected_429, rejected as u64);
}

#[test]
fn expired_deadlines_are_503() {
    let model = trained_model();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        deadline_ms: 0, // every request is already late
        ..ServerConfig::default()
    };
    let handle = spawn_server(config, model);
    let addr = handle.addr.to_string();
    let resp = request(&addr, "GET", "/healthz", "application/json", b"", 30_000).expect("healthz");
    assert_eq!(resp.status, 503);
    assert!(resp.text().contains("deadline_exceeded"));
    let report = handle.stop().expect("stop");
    assert!(report.deadline_503 >= 1);
}

#[test]
fn health_metrics_and_drain_report() {
    let model = trained_model();
    let handle = spawn_server(quiet_config(), model);
    let addr = handle.addr.to_string();

    let health =
        request(&addr, "GET", "/healthz", "application/json", b"", 30_000).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().starts_with("{\"ok\":true,\"draining\":false"));

    let metrics =
        request(&addr, "GET", "/metrics", "application/json", b"", 30_000).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().starts_with("{\"schema\":1,\"metrics\":"));
    assert!(metrics.text().contains("\"serve.requests\""));

    let shutdown = request(
        &addr,
        "POST",
        "/admin/shutdown",
        "application/json",
        b"",
        30_000,
    )
    .expect("shutdown");
    assert_eq!(shutdown.status, 200);
    assert!(shutdown.text().contains("\"draining\":true"));

    let report = handle.stop().expect("stop");
    assert!(report.requests >= 3);
    assert_eq!(report.rejected_429, 0);
}

#[test]
fn loadgen_loopback_run_is_clean_below_the_queue_limit() {
    let model = trained_model();
    let handle = spawn_server(quiet_config(), model);
    let config = LoadgenConfig {
        addr: handle.addr.to_string(),
        requests: 10,
        concurrency: 2,
        frames: 24,
        seed: 41,
        timeout_ms: 60_000,
        replay: None,
    };
    let report = loadgen::run(&config).expect("loadgen");
    assert_eq!(report.status_2xx, 10, "report: {}", report.report_json());
    assert_eq!(report.errors, 0);
    assert_eq!(report.status_429, 0);
    assert!(report.requests_per_s > 0.0);
    assert!(report.p50_ms > 0.0 && report.p50_ms <= report.p99_ms);
    // Every 2xx response carries a confidence score (quality is on by
    // default) and the distribution lands inside [0, 1].
    assert_eq!(report.scored, 10, "report: {}", report.report_json());
    assert!(report.clip_score_p50 > 0.0 && report.clip_score_p50 <= 1.0);
    assert!(report.clip_score_p95 <= report.clip_score_p50 + 1e-9);
    let json = report.report_json();
    assert!(json.starts_with("{\"schema\":6,\"bench\":\"serve.loadgen\""));
    assert!(json.contains("\"clip_score_p50\":"));
    assert!(json.contains("\"replay_clips\":0"));
    handle.stop().expect("stop");
}

#[test]
fn quality_fields_ride_along_and_metrics_appear() {
    let model = trained_model();
    let clip = test_clip();
    let handle = spawn_server(quiet_config(), model);
    let addr = handle.addr.to_string();

    let resp = request(
        &addr,
        "POST",
        "/v1/evaluate",
        "application/octet-stream",
        &clip_body(&clip),
        30_000,
    )
    .expect("evaluate");
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let text = resp.text();
    assert!(text.contains(",\"confidence\":"), "{text}");
    assert!(text.contains(",\"quality\":{\"score\":"), "{text}");

    let metrics =
        request(&addr, "GET", "/metrics", "application/json", b"", 30_000).expect("metrics");
    let snapshot = metrics.text();
    assert!(snapshot.contains("\"serve.quality.clips\""), "{snapshot}");
    assert!(
        snapshot.contains("\"serve.quality.score.milli\""),
        "{snapshot}"
    );
    assert!(
        snapshot.contains("\"serve.quality.reason.temporal_jump\""),
        "{snapshot}"
    );
    handle.stop().expect("stop");
}

#[test]
fn disabling_quality_restores_the_legacy_wire_bytes() {
    let model = trained_model();
    let clip = test_clip();
    let (expected, poses) = expected_decisions(&model, &clip);

    let config = ServerConfig {
        quality: None,
        ..quiet_config()
    };
    let handle = spawn_server(config, model);
    let addr = handle.addr.to_string();
    let resp = request(
        &addr,
        "POST",
        "/v1/evaluate",
        "application/octet-stream",
        &clip_body(&clip),
        30_000,
    )
    .expect("evaluate");
    assert_eq!(resp.status, 200, "body: {}", resp.text());

    // With diagnostics off the body is *exactly* the legacy contract —
    // byte-identical, not merely missing the new fields.
    let faults = wire::faults_json(&assess_with_taxonomy(
        &slj_repro::sim::default_taxonomy(),
        &poses,
    ));
    let legacy = format!(
        "{{\"schema\":1,\"frames\":{},\"decisions\":[{}],\"faults\":{}}}",
        expected.len(),
        expected.join(","),
        faults
    );
    assert_eq!(resp.text(), legacy);
    handle.stop().expect("stop");
}

#[test]
fn sessions_active_gauge_tracks_live_sessions() {
    let model = trained_model();
    let handle = spawn_server(quiet_config(), model);
    let addr = handle.addr.to_string();

    let gauge_value = |snapshot: &str| -> i64 {
        let key = "\"serve.sessions.active\":{\"type\":\"gauge\",\"value\":";
        let start = snapshot.find(key).expect("gauge present") + key.len();
        snapshot[start..]
            .split('}')
            .next()
            .and_then(|s| s.parse().ok())
            .expect("gauge value")
    };

    let create = request(
        &addr,
        "POST",
        "/v1/sessions",
        "application/json",
        b"{}",
        30_000,
    )
    .expect("create");
    assert_eq!(create.status, 201);
    let id: u64 = create
        .text()
        .trim_start_matches("{\"session\":")
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("session id");

    let live = request(&addr, "GET", "/metrics", "application/json", b"", 30_000).expect("metrics");
    assert_eq!(gauge_value(&live.text()), 1, "one live session");

    let delete = request(
        &addr,
        "DELETE",
        &format!("/v1/sessions/{id}"),
        "application/json",
        b"",
        30_000,
    )
    .expect("delete");
    assert_eq!(delete.status, 200);

    let drained =
        request(&addr, "GET", "/metrics", "application/json", b"", 30_000).expect("metrics");
    assert_eq!(gauge_value(&drained.text()), 0, "session closed");
    handle.stop().expect("stop");
}
