//! Streaming/batch parity: the online [`JumpSession`] must commit, frame
//! by frame, exactly the estimates the batch path produces — including
//! posteriors, bit for bit — so ablations run through either API are
//! comparable.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::engine::{JumpSession, PIPELINE_STAGE_NAMES};
use slj_repro::core::model::{PoseEstimate, PoseModel};
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::core::training::Trainer;
use slj_repro::sim::{ClipSpec, JumpFault, JumpSimulator, LabeledClip, NoiseConfig};

fn trained_model(sim: &JumpSimulator) -> PoseModel {
    let noise = NoiseConfig::default();
    let train: Vec<_> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 36,
                seed: i,
                noise,
                rare_poses: i % 2 == 1,
                ..ClipSpec::default()
            })
        })
        .collect();
    Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&train)
        .expect("train")
}

/// The batch path: process the whole clip through the owned-snapshot
/// [`FrameProcessor`], then classify the collected features in a second
/// pass.
fn batch_estimates(model: &PoseModel, clip: &LabeledClip) -> Vec<PoseEstimate> {
    let mut processor =
        FrameProcessor::new(clip.background.clone(), model.config()).expect("processor");
    let frames: Vec<_> = clip
        .frames
        .iter()
        .map(|f| processor.process(f).expect("process"))
        .collect();
    let mut classifier = model.start_clip();
    frames
        .iter()
        .map(|f| classifier.step(&f.features).expect("step"))
        .collect()
}

/// The streaming path: one frame in, one committed estimate out.
fn streamed_estimates(model: &PoseModel, clip: &LabeledClip) -> Vec<PoseEstimate> {
    let mut session = JumpSession::new(model, clip.background.clone()).expect("session");
    clip.frames
        .iter()
        .map(|frame| session.push_frame(frame).expect("push"))
        .collect()
}

#[test]
fn streaming_matches_batch_on_varied_clips() {
    let sim = JumpSimulator::new(909);
    let model = trained_model(&sim);
    let noise = NoiseConfig::default();
    // Three clips the batch path must be reproduced on exactly: a clean
    // jump, one with rare poses, and one with an injected standards
    // fault (whose unusual sequences stress the Unknown/carry-forward
    // logic hardest).
    let specs = [
        ClipSpec {
            total_frames: 40,
            seed: 500,
            noise,
            ..ClipSpec::default()
        },
        ClipSpec {
            total_frames: 40,
            seed: 501,
            noise,
            rare_poses: true,
            ..ClipSpec::default()
        },
        ClipSpec {
            total_frames: 44,
            seed: 502,
            noise,
            fault: Some(JumpFault::NoCrouch),
            ..ClipSpec::default()
        },
    ];
    for (i, spec) in specs.iter().enumerate() {
        let clip = sim.generate_clip(spec);
        let batch = batch_estimates(&model, &clip);
        let streamed = streamed_estimates(&model, &clip);
        assert_eq!(batch.len(), streamed.len(), "clip {i}: length mismatch");
        for (t, (b, s)) in batch.iter().zip(&streamed).enumerate() {
            assert_eq!(b, s, "clip {i}: estimates diverge at frame {t}");
        }
    }
}

#[test]
fn session_reports_timings_for_every_stage() {
    let sim = JumpSimulator::new(909);
    let model = trained_model(&sim);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 24,
        seed: 503,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let mut session = JumpSession::new(&model, clip.background.clone()).expect("session");
    session.push_frame(&clip.frames[0]).expect("push");
    let names: Vec<_> = session.last_timings().iter().map(|(n, _)| n).collect();
    let mut expected = PIPELINE_STAGE_NAMES.to_vec();
    expected.push(slj_repro::core::engine::DBN_STAGE);
    assert_eq!(names, expected);
}
