//! Corpus subsystem integration: end-to-end ingestion through a trained
//! model, archive round-trips (including a property-style randomized
//! sweep), committed corrupted fixtures with their expected `corpus/*`
//! rule codes, query thread-count parity, and the trace bridge.

use slj_repro::corpus::{
    ingest_stored_clips, ingest_trace, ArchiveStats, Corpus, IngestClip, IngestOptions, Query,
    MAGIC,
};
use slj_repro::quality::QualityConfig;
use slj_repro::runtime::ThreadPool;
use slj_repro::sim::io::StoredClip;
use slj_repro::sim::{default_taxonomy, ClipSpec, JumpSimulator, NoiseConfig};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/corpus")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Simulated clips shaped like `slj generate` output (seed = index).
fn sim_clips(count: usize, frames: usize) -> Vec<IngestClip> {
    let sim = JumpSimulator::new(404);
    (0..count)
        .map(|i| {
            let clip = sim.generate_clip(&ClipSpec {
                total_frames: frames,
                seed: i as u64,
                noise: NoiseConfig::default(),
                rare_poses: i % 3 == 2,
                ..ClipSpec::default()
            });
            IngestClip {
                source: format!("clip_{i:03}"),
                seed: i as u64,
                clip: StoredClip {
                    labels: clip.truth.iter().map(|t| (t.stage, t.pose)).collect(),
                    frames: clip.frames,
                    background: clip.background,
                },
            }
        })
        .collect()
}

fn demo_model() -> slj_repro::core::model::PoseModel {
    use slj_repro::core::config::PipelineConfig;
    use slj_repro::core::training::Trainer;
    let sim = JumpSimulator::new(404);
    let clips: Vec<_> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 24,
                seed: i,
                ..ClipSpec::default()
            })
        })
        .collect();
    Trainer::new(PipelineConfig::default())
        .and_then(|t| t.train(&clips))
        .expect("demo model trains")
}

#[test]
fn ingest_archive_query_round_trip_is_bit_exact_and_thread_invariant() {
    let model = demo_model();
    let items = sim_clips(6, 24);
    let options = IngestOptions {
        quality: Some(QualityConfig::default()),
    };

    // Ingestion itself must be thread-count-invariant.
    let serial = ingest_stored_clips(&model, &items, &options, &ThreadPool::fixed(1), None)
        .expect("serial ingest");
    let parallel = ingest_stored_clips(&model, &items, &options, &ThreadPool::fixed(8), None)
        .expect("parallel ingest");
    assert_eq!(serial, parallel, "ingestion is deterministic across pools");

    // Archive round trip: corpus -> text -> corpus -> identical text.
    let text = serial.to_archive_string();
    assert!(text.starts_with(MAGIC), "archive leads with the magic line");
    let reparsed = Corpus::from_archive_str(&text).expect("own archive parses");
    assert_eq!(reparsed, serial, "parse inverts render");
    assert_eq!(
        reparsed.to_archive_string(),
        text,
        "render is a fixed point"
    );

    // Queries and stats agree bit-for-bit at 1 and 8 threads.
    let fault = serial.taxonomy.faults()[0].ident.clone();
    for expr in [
        format!("fault={fault}"),
        format!("fault={fault} min_run=2"),
        "clip_score>=0 stage=Landing".to_string(),
        "margin>=-1.0".to_string(),
    ] {
        let query = Query::parse(&expr).expect("query parses");
        let one = query
            .evaluate(&serial, &ThreadPool::fixed(1), None)
            .expect("eval t1")
            .to_json(usize::MAX);
        let eight = query
            .evaluate(&serial, &ThreadPool::fixed(8), None)
            .expect("eval t8")
            .to_json(usize::MAX);
        assert_eq!(one, eight, "query {expr:?} is thread-count-invariant");
    }
    let s1 = ArchiveStats::compute(&serial, &ThreadPool::fixed(1)).expect("stats t1");
    let s8 = ArchiveStats::compute(&serial, &ThreadPool::fixed(8)).expect("stats t8");
    assert_eq!(
        s1.to_json(),
        s8.to_json(),
        "stats are thread-count-invariant"
    );
    assert_eq!(s1.clips, 6);
    assert_eq!(s1.frames, serial.total_frames());
}

#[test]
fn randomized_corpora_round_trip_bit_exact() {
    // Property-style sweep: pseudo-random (but deterministic) column
    // contents across lengths, magnitudes and span shapes.
    let taxonomy = default_taxonomy();
    let poses = taxonomy.pose_count() as i64;
    let stages = taxonomy.stage_count() as i64;
    let rules = taxonomy.faults().len() as u32;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for case in 0..25u64 {
        let clips = (next() % 4 + 1) as usize;
        let mut records = Vec::new();
        for id in 0..clips {
            let frames = (next() % 40 + 1) as usize;
            let column = |limit: i64, next: &mut dyn FnMut() -> u64| -> Vec<i64> {
                (0..frames)
                    .map(|_| (next() % (limit + 1) as u64) as i64 - 1)
                    .collect()
            };
            let pose = column(poses, &mut next);
            let stage: Vec<i64> = (0..frames)
                .map(|_| (next() % stages as u64) as i64)
                .collect();
            let spans = if rules > 0 && frames >= 2 {
                vec![slj_repro::corpus::FaultSpan {
                    rule: (next() % u64::from(rules)) as u32,
                    start: 0,
                    end: (next() % frames as u64) as u32,
                }]
            } else {
                Vec::new()
            };
            records.push(slj_repro::corpus::ClipRecord {
                id: id as u64,
                source: format!("case{case}_clip{id}"),
                seed: next(),
                score_micro: (next() % 2_000_000) as i64 - 1,
                online: pose.clone(),
                pose,
                stage,
                margin: (0..frames).map(|_| (next() as i64) >> 40).collect(),
                flags: (0..frames).map(|_| (next() % 129) as i64 - 1).collect(),
                fired: spans.iter().map(|s| s.rule).collect(),
                spans,
            });
        }
        let corpus = Corpus {
            taxonomy: taxonomy.clone(),
            clips: records,
        };
        let text = corpus.to_archive_string();
        let reparsed = Corpus::from_archive_str(&text)
            .unwrap_or_else(|e| panic!("case {case} failed to parse: {e}"));
        assert_eq!(reparsed, corpus, "case {case} round trip");
    }
}

#[test]
fn committed_corrupted_fixtures_fail_with_their_rule_codes() {
    // The valid sibling parses...
    Corpus::from_archive_str(&fixture("valid-small.corpus")).expect("valid fixture parses");
    // ...and each corruption is caught under its dedicated rule code.
    for (name, code) in [
        ("bad-magic.corpus", "corpus/magic"),
        ("truncated-column.corpus", "corpus/column"),
        ("footer-mismatch.corpus", "corpus/footer"),
        ("index-drift.corpus", "corpus/footer"),
    ] {
        let err = Corpus::from_archive_str(&fixture(name))
            .expect_err(&format!("{name} must be rejected"));
        assert_eq!(err.code, code, "{name}: {err}");
    }
}

#[test]
fn trace_bridge_round_trips_through_the_archive() {
    let taxonomy = default_taxonomy();
    let stage = taxonomy.stage_ident(0);
    let pose = taxonomy.pose_ident(0);
    let line = |clip: u64, pose_json: &str| {
        format!(
            "{{\"schema\":3,\"clip\":{clip},\"frame\":0,\"pose\":{pose_json},\
             \"best_prob\":0.9,\"th_margin\":0.25,\"accepted\":true,\
             \"carry_forward\":false,\"stage\":\"{stage}\",\"quality_flags\":null}}"
        )
    };
    let text = [
        line(0, &format!("\"{pose}\"")),
        line(0, "null"),
        line(1, &format!("\"{pose}\"")),
    ]
    .join("\n");
    let corpus = ingest_trace(&text, &taxonomy).expect("bridge ingests");
    assert_eq!(corpus.clips.len(), 2);
    assert_eq!(corpus.clips[0].margin, vec![250_000, 250_000]);
    let round =
        Corpus::from_archive_str(&corpus.to_archive_string()).expect("bridged archive parses");
    assert_eq!(round, corpus);

    // Schema drift in the source stream is an ingestion error.
    let drifted = text.replace("\"schema\":3", "\"schema\":7");
    let err = ingest_trace(&drifted, &taxonomy).expect_err("schema drift rejected");
    assert_eq!(err.code, "corpus/ingest");
}
