//! The static-analysis gate, enforced by `cargo test`.
//!
//! Runs the full checker — direct lint rules plus the interprocedural
//! reachability rules — over the real workspace sources against the
//! committed `check-baseline.json` ratchet: any (rule, file) cell that
//! got worse fails this test with the same message `slj check
//! --workspace --baseline check-baseline.json` would print in CI. Cells
//! that improved are reported as a reminder to tighten the baseline,
//! but do not fail.
//!
//! The seeded-violation fixtures under `tests/fixtures/callgraph/` pin
//! each interprocedural rule end-to-end: a known-bad source tree must
//! produce the expected finding *with its witness call chain*, and the
//! clean tree must stay silent.

use std::path::{Path, PathBuf};

use slj_repro::check::baseline::Baseline;
use slj_repro::check::lint::lint_workspace;
use slj_repro::check::reach::{
    analyze_workspace, RULE_ALLOC_REACH, RULE_LOCK_ORDER, RULE_PANIC_REACH, RULE_WALL_REACH,
};
use slj_repro::check::report::Finding;
use slj_repro::check::schemas::check_schemas;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// What `slj check --workspace` runs: direct lint plus reachability,
/// one combined finding set feeding one ratchet.
fn combined_findings(root: &Path) -> Vec<Finding> {
    let mut findings = lint_workspace(root).expect("workspace walk succeeds");
    findings.extend(analyze_workspace(root).expect("reach analysis succeeds"));
    findings
}

fn fixture_root(name: &str) -> PathBuf {
    repo_root().join("tests/fixtures/callgraph").join(name)
}

#[test]
fn workspace_check_respects_the_ratchet() {
    let root = repo_root();
    let findings = combined_findings(root);
    let current = Baseline::from_findings(&findings);
    let committed =
        Baseline::load(&root.join("check-baseline.json")).expect("committed baseline parses");
    let report = committed.compare(&current);
    assert!(
        report.regressions.is_empty(),
        "slj-check ratchet regressions (fix them or justify with \
         `// slj-check: allow(<rule>) — <reason>`):\n{:#?}",
        report.regressions
    );
    if !report.improvements.is_empty() {
        eprintln!(
            "note: {} baseline cell(s) improved — run `slj check --workspace --write-baseline` \
             and commit the tighter counts",
            report.improvements.len()
        );
    }
}

#[test]
fn allow_directives_all_carry_reasons() {
    // check/allow-missing-reason findings are never baselined; any one
    // of them is an error regardless of the ratchet.
    let findings = combined_findings(repo_root());
    let bare: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "check/allow-missing-reason")
        .collect();
    assert!(
        bare.is_empty(),
        "allow directives without reasons: {bare:?}"
    );
}

#[test]
fn determinism_and_hot_path_rules_are_clean() {
    // The grandfathered baseline covers robustness/* only; the
    // determinism, perf, concurrency, and obs rules — direct and
    // transitive alike — must stay at zero outright.
    let findings = combined_findings(repo_root());
    let hard: Vec<_> = findings
        .iter()
        .filter(|f| f.is_active() && !f.rule.starts_with("robustness/"))
        .collect();
    assert!(
        hard.is_empty(),
        "determinism/perf/concurrency/obs rules must have zero unsuppressed findings: {hard:?}"
    );
}

#[test]
fn seeded_transitive_panic_is_caught_with_chain() {
    let findings = analyze_workspace(&fixture_root("transitive-panic")).unwrap();
    let f = findings
        .iter()
        .find(|f| f.rule == RULE_PANIC_REACH)
        .expect("seeded transitive panic must be found");
    assert!(f.is_active());
    assert!(
        f.message.contains("evaluate_clip → best_sample"),
        "message names the call chain: {}",
        f.message
    );
    let hops: Vec<&str> = f.chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(hops, ["evaluate_clip", "best_sample", ".unwrap()"]);
}

#[test]
fn seeded_two_hop_alloc_is_caught_with_chain() {
    let findings = analyze_workspace(&fixture_root("hot-alloc-2hop")).unwrap();
    let f = findings
        .iter()
        .find(|f| f.rule == RULE_ALLOC_REACH)
        .expect("seeded 2-hop hot-path allocation must be found");
    assert!(f.is_active());
    assert!(
        f.message
            .contains("blur_rows_into → staging_pass → scratch_rows"),
        "message names the 2-hop chain: {}",
        f.message
    );
    assert_eq!(f.chain.len(), 4, "root, two hops, effect: {:?}", f.chain);
}

#[test]
fn seeded_wall_clock_behind_helper_is_caught() {
    let findings = analyze_workspace(&fixture_root("wall-clock-helper")).unwrap();
    let f = findings
        .iter()
        .find(|f| f.rule == RULE_WALL_REACH)
        .expect("seeded wall-clock read behind a helper must be found");
    assert!(f.is_active());
    assert!(
        f.message.contains("Session::push_frame") && f.message.contains("stamp_ns"),
        "message names entry point and helper: {}",
        f.message
    );
    assert_eq!(
        f.chain.last().map(|h| h.name.as_str()),
        Some("Instant::now()")
    );
}

#[test]
fn seeded_lock_order_cycle_is_caught() {
    let findings = analyze_workspace(&fixture_root("lock-cycle")).unwrap();
    let f = findings
        .iter()
        .find(|f| f.rule == RULE_LOCK_ORDER)
        .expect("seeded AB/BA lock cycle must be found");
    assert!(f.is_active());
    for needle in ["Queues.intake", "Queues.results", "publish", "reclaim"] {
        assert!(
            f.message.contains(needle),
            "cycle message names both locks and both witnesses ({needle}): {}",
            f.message
        );
    }
    assert_eq!(f.chain.len(), 2, "one hop per cycle edge: {:?}", f.chain);
}

#[test]
fn clean_fixture_stays_silent() {
    let findings = analyze_workspace(&fixture_root("clean")).unwrap();
    assert!(
        findings.is_empty(),
        "clean fixture must produce no interprocedural findings: {findings:?}"
    );
}

#[test]
fn schema_constants_match_committed_fixtures() {
    let findings = check_schemas(repo_root()).expect("schema check runs");
    let active: Vec<_> = findings.iter().filter(|f| f.is_active()).collect();
    assert!(
        active.is_empty(),
        "schema constants drifted from committed fixtures: {active:?}"
    );
}

#[test]
fn v1_baselines_still_load_and_migrate() {
    // Baselines written before the reach rules existed are schema 1;
    // loading one must succeed and re-serialise as schema 2.
    let dir = std::env::temp_dir().join("slj-static-analysis-v1-migration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("check-baseline.json");
    std::fs::write(
        &path,
        "{\"schema\":1,\"rules\":{\"robustness/no-panic-in-lib\":{\"crates/x/src/lib.rs\":2}}}\n",
    )
    .unwrap();
    let base = Baseline::load(&path).expect("v1 baseline loads");
    assert!(
        base.to_json().starts_with("{\"schema\":2"),
        "v1 input migrates to the current schema on write"
    );
    std::fs::remove_dir_all(&dir).ok();
}
