//! The static-analysis gate, enforced by `cargo test`.
//!
//! Lints the real workspace sources against the committed
//! `check-baseline.json` ratchet: any (rule, file) cell that got worse
//! fails this test with the same message `slj check --workspace
//! --baseline check-baseline.json` would print in CI. Cells that
//! improved are reported as a reminder to tighten the baseline, but do
//! not fail.

use std::path::Path;

use slj_repro::check::baseline::Baseline;
use slj_repro::check::lint::lint_workspace;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lint_respects_the_ratchet() {
    let root = repo_root();
    let findings = lint_workspace(root).expect("workspace walk succeeds");
    let current = Baseline::from_findings(&findings);
    let committed =
        Baseline::load(&root.join("check-baseline.json")).expect("committed baseline parses");
    let report = committed.compare(&current);
    assert!(
        report.regressions.is_empty(),
        "slj-check ratchet regressions (fix them or justify with \
         `// slj-check: allow(<rule>) — <reason>`):\n{:#?}",
        report.regressions
    );
    if !report.improvements.is_empty() {
        eprintln!(
            "note: {} baseline cell(s) improved — run `slj check --workspace --write-baseline` \
             and commit the tighter counts",
            report.improvements.len()
        );
    }
}

#[test]
fn allow_directives_all_carry_reasons() {
    // check/allow-missing-reason findings are never baselined; any one
    // of them is an error regardless of the ratchet.
    let findings = lint_workspace(repo_root()).expect("workspace walk succeeds");
    let bare: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "check/allow-missing-reason")
        .collect();
    assert!(
        bare.is_empty(),
        "allow directives without reasons: {bare:?}"
    );
}

#[test]
fn determinism_and_hot_path_rules_are_clean() {
    // The grandfathered baseline covers robustness/no-panic-in-lib only;
    // the determinism, perf, and obs rules must stay at zero outright.
    let findings = lint_workspace(repo_root()).expect("workspace walk succeeds");
    let hard: Vec<_> = findings
        .iter()
        .filter(|f| f.is_active() && !f.rule.starts_with("robustness/"))
        .collect();
    assert!(
        hard.is_empty(),
        "determinism/perf/obs rules must have zero unsuppressed findings: {hard:?}"
    );
}
