//! Property-based integration tests over randomly generated scenes.

use proptest::prelude::*;
use slj_repro::core::config::PipelineConfig;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};
use slj_repro::skeleton::features::BodyPart;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated clip processes without panicking and yields
    /// in-bounds key points and consistent feature vectors.
    #[test]
    fn any_clip_processes_cleanly(seed in 0u64..5000, frames in 22usize..50) {
        let sim = JumpSimulator::new(606);
        let clip = sim.generate_clip(&ClipSpec {
            total_frames: frames,
            seed,
            noise: NoiseConfig::default(),
            ..ClipSpec::default()
        });
        let processor =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let (w, h) = clip.background.dimensions();
        for frame in clip.frames.iter().step_by(6) {
            let p = processor.process(frame).unwrap();
            for point in [
                p.keypoints.head,
                p.keypoints.chest,
                p.keypoints.hand,
                p.keypoints.knee,
                p.keypoints.foot,
                p.keypoints.waist,
            ]
            .into_iter()
            .flatten()
            {
                prop_assert!(point.0 >= 0.0 && point.0 < w as f64);
                prop_assert!(point.1 >= 0.0 && point.1 < h as f64);
            }
            // A part with an area requires a waist.
            if p.features.present_parts() > 0 {
                prop_assert!(p.keypoints.waist.is_some());
            }
            // Occupied areas are exactly the areas of present parts.
            let occ = p.features.occupied_areas();
            for part in BodyPart::ALL {
                if let Some(a) = p.features.area(part) {
                    prop_assert!(occ[a as usize]);
                }
            }
        }
    }

    /// The cleaned skeleton is always a subset of the silhouette and a
    /// forest (no loops), with no prunable branches left.
    #[test]
    fn cleaned_skeleton_invariants(seed in 0u64..5000) {
        let sim = JumpSimulator::new(707);
        let clip = sim.generate_clip(&ClipSpec {
            total_frames: 24,
            seed,
            noise: NoiseConfig::default(),
            ..ClipSpec::default()
        });
        let processor =
            FrameProcessor::new(clip.background.clone(), &PipelineConfig::default()).unwrap();
        let config = PipelineConfig::default();
        for frame in clip.frames.iter().step_by(8) {
            let p = processor.process(frame).unwrap();
            // Subset: skeleton AND silhouette == skeleton.
            prop_assert_eq!(
                &p.skeleton.skeleton.and(&p.silhouette).unwrap(),
                &p.skeleton.skeleton
            );
            prop_assert_eq!(p.skeleton.graph.cycle_rank(), 0);
            prop_assert_eq!(
                slj_repro::skeleton::prune::short_branch_count(
                    &p.skeleton.graph,
                    config.skeleton.min_branch_len
                ),
                0
            );
        }
    }

    /// Ground-truth stages of any generated clip are monotone and the
    /// pose labels belong to their stages.
    #[test]
    fn clip_labels_are_consistent(seed in 0u64..5000, rare in proptest::bool::ANY) {
        let sim = JumpSimulator::new(808);
        let clip = sim.generate_clip(&ClipSpec {
            total_frames: 30,
            seed,
            rare_poses: rare,
            noise: NoiseConfig::default(),
            ..ClipSpec::default()
        });
        let mut prev = 0usize;
        for t in &clip.truth {
            prop_assert!(t.stage.index() >= prev);
            prev = t.stage.index();
            prop_assert_eq!(t.pose.stage(), t.stage);
        }
    }
}
