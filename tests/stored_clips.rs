//! Disk round-trip of whole clips: save → reload → train → evaluate,
//! the workflow real labelled video would follow.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::evaluation::evaluate;
use slj_repro::core::training::Trainer;
use slj_repro::sim::io::{load_clip, save_clip};
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

#[test]
fn training_from_reloaded_clips_matches_direct_training() {
    let dir = std::env::temp_dir().join("slj_stored_clips_test");
    let _ = std::fs::remove_dir_all(&dir);

    let sim = JumpSimulator::new(909);
    let noise = NoiseConfig::default();
    let train: Vec<_> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 36,
                seed: i,
                noise,
                rare_poses: i % 2 == 1,
                ..ClipSpec::default()
            })
        })
        .collect();
    let test = vec![sim.generate_clip(&ClipSpec {
        total_frames: 36,
        seed: 50,
        noise,
        ..ClipSpec::default()
    })];

    // Save the training clips, reload them, train from the stored form.
    let stored: Vec<_> = train
        .iter()
        .enumerate()
        .map(|(i, clip)| {
            let clip_dir = dir.join(format!("clip_{i}"));
            save_clip(&clip_dir, clip).unwrap();
            load_clip(&clip_dir).unwrap()
        })
        .collect();

    let trainer = Trainer::new(PipelineConfig::default()).expect("config");
    let direct = trainer.train(&train).unwrap();
    let reloaded = trainer.train_from_stored(&stored).unwrap();

    // Same frames, same labels → identical learned tables.
    assert_eq!(direct.tables(), reloaded.tables());

    // And the reloaded model evaluates identically.
    let a = evaluate(&direct, &test).unwrap().overall_accuracy();
    let b = evaluate(&reloaded, &test).unwrap().overall_accuracy();
    assert_eq!(a, b);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_from_stored_validates_input() {
    let trainer = Trainer::new(PipelineConfig::default()).expect("config");
    assert!(trainer.train_from_stored(&[]).is_err());

    let sim = JumpSimulator::new(910);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 25,
        seed: 0,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let dir = std::env::temp_dir().join("slj_stored_clips_invalid");
    let _ = std::fs::remove_dir_all(&dir);
    save_clip(&dir, &clip).unwrap();
    let mut stored = load_clip(&dir).unwrap();
    stored.labels.pop();
    assert!(trainer.train_from_stored(&[stored]).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
