//! The Unknown-frame carry-forward rule, pinned down through the trace
//! layer: streaming a fault-injected clip with a ring tracer attached
//! must produce `frame.decision` events and [`FrameRecord`]s whose
//! `carry_forward` flags match the decoded pose sequence exactly —
//! `true` precisely on the Unknown frames (when the rule is enabled),
//! with the committed pose holding the last recognised one.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::engine::JumpSession;
use slj_repro::core::model::PoseModel;
use slj_repro::core::trace::FrameRecord;
use slj_repro::core::training::Trainer;
use slj_repro::obs::{Tracer, Value};
use slj_repro::sim::{ClipSpec, JumpFault, JumpSimulator, LabeledClip, NoiseConfig};

fn trained_model(sim: &JumpSimulator) -> PoseModel {
    let train: Vec<_> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 36,
                seed: i,
                noise: NoiseConfig::default(),
                rare_poses: i % 2 == 1,
                ..ClipSpec::default()
            })
        })
        .collect();
    // A strict Th_Pose guarantees the noisy fixture clip actually has
    // sub-threshold (Unknown) frames for the carry-forward rule to act on.
    let config = PipelineConfig {
        th_pose: 0.6,
        ..PipelineConfig::default()
    };
    Trainer::new(config)
        .expect("config")
        .train(&train)
        .expect("train")
}

/// A clip with an injected standards fault and heavier noise, so the
/// classifier actually sees sub-threshold (Unknown) frames.
fn faulty_clip(sim: &JumpSimulator) -> LabeledClip {
    let noise = NoiseConfig {
        speckle_prob: 0.006,
        edge_dropout_prob: 0.35,
        hole_prob: 0.03,
        ..NoiseConfig::default()
    };
    sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 777,
        noise,
        fault: Some(JumpFault::NoCrouch),
        ..ClipSpec::default()
    })
}

#[test]
fn carry_forward_flags_match_decoded_sequence_exactly() {
    let sim = JumpSimulator::new(909);
    let model = trained_model(&sim);
    let clip = faulty_clip(&sim);
    let carry_enabled = model.config().carry_forward;

    let (tracer, ring) = Tracer::ring(4 * clip.len());
    let mut session = JumpSession::new(&model, clip.background.clone()).expect("session");
    session.set_tracer(tracer);

    let mut records: Vec<FrameRecord> = Vec::new();
    let mut estimates = Vec::new();
    let mut last_committed = None;
    for frame in &clip.frames {
        let est = session.push_frame(frame).expect("push");
        records.push(session.frame_record(&est));
        estimates.push(est);
    }
    let events = ring.drain();
    assert_eq!(events.len(), clip.len(), "one decision event per frame");
    assert_eq!(records.len(), clip.len());

    let mut unknown_frames = 0usize;
    for (t, ((est, record), event)) in estimates.iter().zip(&records).zip(&events).enumerate() {
        // The trace layer's flag must equal the decoded sequence's:
        // carry-forward fires exactly on Unknown frames when enabled.
        let expected_carry = est.pose.is_none() && carry_enabled;
        assert_eq!(
            record.carry_forward, expected_carry,
            "frame {t}: record flag disagrees with decoded sequence"
        );
        assert_eq!(
            event.field("carry_forward"),
            Some(Value::Bool(expected_carry)),
            "frame {t}: event flag disagrees with decoded sequence"
        );
        assert_eq!(record.frame, t as u64);
        assert_eq!(event.field("frame"), Some(Value::U64(t as u64)));
        match est.pose {
            Some(pose) => {
                assert!(record.accepted, "frame {t}: decided pose but not accepted");
                assert_eq!(record.unknown_reason, None);
                assert_eq!(
                    record.pose.as_deref(),
                    Some(model.taxonomy().pose_ident(pose))
                );
                assert_eq!(est.committed_pose, pose, "frame {t}: committed != decided");
            }
            None => {
                unknown_frames += 1;
                assert!(!record.accepted);
                assert_eq!(record.unknown_reason, Some("below_th_pose"));
                assert!(record.th_margin < 0.0, "frame {t}: Unknown above threshold");
                if expected_carry {
                    // The committed pose must hold the last recognised one.
                    if let Some(prev) = last_committed {
                        assert_eq!(
                            est.committed_pose, prev,
                            "frame {t}: carry-forward broke the committed chain"
                        );
                    }
                }
            }
        }
        last_committed = Some(est.committed_pose);
    }
    assert!(
        unknown_frames > 0,
        "fixture produced no Unknown frames; the carry-forward rule was never exercised"
    );
}
