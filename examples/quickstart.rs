//! Quickstart: generate a synthetic jump, train the DBN classifier on a
//! few clips, and estimate the pose in every frame of a fresh clip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::evaluation::evaluate_clip;
use slj_repro::core::training::Trainer;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate labelled training clips (the paper recorded studio
    //    video; we render an articulated jumper instead).
    let sim = JumpSimulator::new(7);
    let noise = NoiseConfig::default();
    let train: Vec<_> = (0..6)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 44,
                seed: i,
                noise,
                rare_poses: i % 3 == 2,
                ..ClipSpec::default()
            })
        })
        .collect();

    // 2. Quantitative training: learn stage/pose transitions and the
    //    per-pose body-part tables from the extracted feature vectors.
    let config = PipelineConfig::default();
    let model = Trainer::new(config)?.train(&train)?;

    // 3. Classify an unseen clip frame by frame.
    let test = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 999,
        noise,
        ..ClipSpec::default()
    });
    let report = evaluate_clip(&model, &test)?;

    println!("frame  truth                                predicted");
    println!("-----  -----------------------------------  -----------------------------------");
    for (i, (est, truth)) in report.estimates.iter().zip(&report.truth).enumerate() {
        let mark = if est.pose == Some(*truth) { ' ' } else { '*' };
        println!(
            "{i:4}{mark}  {:<35}  {}",
            truth.to_string(),
            est.pose
                .map(|p| p.to_string())
                .unwrap_or_else(|| "(unknown)".into()),
        );
    }
    println!(
        "\naccuracy: {}/{} frames ({:.1}%)",
        report.correct,
        report.total,
        100.0 * report.accuracy()
    );
    Ok(())
}
