//! Offline review (extension): a teacher analysing a recorded clip after
//! the fact can use hindsight. This example contrasts the paper's online
//! classifier — which commits to each frame immediately and lets one
//! mistake bleed into the next frames — with batch Viterbi decoding of
//! the whole clip.
//!
//! ```text
//! cargo run --release --example offline_review
//! ```

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::core::training::Trainer;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = JumpSimulator::new(13);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())?.train(&data.train)?;

    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 777,
        noise,
        ..ClipSpec::default()
    });
    let mut processor = FrameProcessor::new(clip.background.clone(), model.config())?;
    let features: Vec<_> = clip
        .frames
        .iter()
        .map(|f| processor.process(f).map(|p| p.features))
        .collect::<Result<_, _>>()?;

    // Online, frame by frame (the paper's classifier).
    let mut clf = model.start_clip();
    let online: Vec<_> = features
        .iter()
        .map(|fv| clf.step(fv).map(|e| e.pose))
        .collect::<Result<_, _>>()?;

    // Offline, whole clip at once (Viterbi).
    let offline = model.decode_clip(&features)?;

    println!("frame  truth                                online          offline");
    println!("-----  -----------------------------------  --------------  --------------");
    let taxonomy = model.taxonomy();
    let mut on_ok = 0;
    let mut off_ok = 0;
    for (t, truth) in clip.truth.iter().enumerate() {
        let on = online[t];
        let off = offline[t].1;
        let truth_pose = truth.pose.index();
        if on == Some(truth_pose) {
            on_ok += 1;
        }
        if off == truth_pose {
            off_ok += 1;
        }
        let mark = |good: bool| if good { ' ' } else { '*' };
        println!(
            "{t:4}   {:<35}  {}{:<14}  {}{:<14}",
            truth.pose.to_string().chars().take(35).collect::<String>(),
            mark(on == Some(truth_pose)),
            on.map(|p| short(taxonomy.pose_display(p)))
                .unwrap_or_else(|| "unknown".into()),
            mark(off == truth_pose),
            short(taxonomy.pose_display(off)),
        );
    }
    println!(
        "\nonline : {on_ok}/{} correct ({:.1}%)",
        clip.len(),
        100.0 * on_ok as f64 / clip.len() as f64
    );
    println!(
        "offline: {off_ok}/{} correct ({:.1}%)  — hindsight helps",
        clip.len(),
        100.0 * off_ok as f64 / clip.len() as f64
    );
    Ok(())
}

fn short(s: &str) -> String {
    s.chars().take(14).collect()
}
