//! Walks one frame through every stage of the paper's pipeline and
//! prints each intermediate result as ASCII art: extraction (Section 2),
//! thinning and graph clean-up (Section 3), key points and the area
//! feature vector (Section 4).
//!
//! ```text
//! cargo run --release --example pipeline_stages
//! ```

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::imaging::binary::BinaryImage;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};
use slj_repro::skeleton::features::BodyPart;

/// Downsamples a mask 2x2 for terminal display.
fn ascii_small(mask: &BinaryImage) -> String {
    let (w, h) = mask.dimensions();
    let mut out = String::new();
    for y in (0..h).step_by(2) {
        for x in (0..w).step_by(2) {
            let any = mask.get(x, y)
                || (x + 1 < w && mask.get(x + 1, y))
                || (y + 1 < h && mask.get(x, y + 1))
                || (x + 1 < w && y + 1 < h && mask.get(x + 1, y + 1));
            out.push(if any { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = JumpSimulator::new(5);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 0,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let frame_idx = 12; // mid-preparation, arms swinging
    let truth = &clip.truth[frame_idx];
    println!(
        "ground truth: pose '{}', stage '{}'\n",
        truth.pose, truth.stage
    );

    let mut processor = FrameProcessor::new(clip.background.clone(), &PipelineConfig::default())?;

    println!("--- Section 2: extracted + smoothed silhouette ---");
    let silhouette = processor.extract_silhouette(&clip.frames[frame_idx])?;
    println!("{}", ascii_small(&silhouette));

    let processed = processor.process(&clip.frames[frame_idx])?;
    println!("--- Section 3: Zhang-Suen skeleton after clean-up ---");
    println!("{}", ascii_small(&processed.skeleton.skeleton));
    let stats = processed.skeleton.stats;
    println!(
        "thinning removed {} px in {} passes; {} loop(s) cut, {} branch(es) pruned\n",
        stats.thinning_removed, stats.thinning_passes, stats.loops_cut, stats.branches_pruned
    );

    println!("--- Section 4: key points and area feature vector ---");
    let kp = processed.keypoints;
    for (name, p) in [
        ("head", kp.head),
        ("chest", kp.chest),
        ("hand", kp.hand),
        ("knee", kp.knee),
        ("foot", kp.foot),
        ("waist", kp.waist),
    ] {
        match p {
            Some((x, y)) => println!("  {name:<6} at ({x:5.1}, {y:5.1})"),
            None => println!("  {name:<6} not visible"),
        }
    }
    println!("\nfeature vector (area per part, 8 areas around the waist):");
    for part in BodyPart::ALL {
        match processed.features.area(part) {
            Some(a) => println!("  {part:<6} -> area {}", a + 1),
            None => println!("  {part:<6} -> absent"),
        }
    }
    Ok(())
}
