//! Regenerates the paper's qualitative figures as image files: input
//! frames (Figure 1a), extracted silhouettes (1b), smoothed silhouettes
//! (1c) and cleaned skeletons with key points (Figures 5 & 8), written
//! as PGM/PPM files under `artifacts/`.
//!
//! ```text
//! cargo run --release --example skeleton_gallery
//! ```

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::pipeline::FrameProcessor;
use slj_repro::imaging::io::{save_mask_pgm, save_ppm};
use slj_repro::imaging::pixel::Rgb;
use slj_repro::sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("artifacts");
    std::fs::create_dir_all(out_dir)?;

    let sim = JumpSimulator::new(8);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 0,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let config = PipelineConfig::default();
    let mut processor = FrameProcessor::new(clip.background.clone(), &config)?;

    // Representative frames across the jump, like the paper's Figure 8.
    for &i in &[2usize, 10, 17, 22, 27, 33, 39, 43] {
        let frame = &clip.frames[i];
        let processed = processor.process(frame)?;

        save_ppm(out_dir.join(format!("frame_{i:02}_input.ppm")), frame)?;
        save_mask_pgm(
            out_dir.join(format!("frame_{i:02}_silhouette.pgm")),
            &processed.silhouette,
        )?;
        save_mask_pgm(
            out_dir.join(format!("frame_{i:02}_skeleton.pgm")),
            &processed.skeleton.skeleton,
        )?;

        // Overlay: skeleton in red over a dimmed frame, key points as
        // bright dots.
        let mut overlay = frame.map(|p| Rgb::new(p.r / 2, p.g / 2, p.b / 2));
        for (x, y) in processed.skeleton.skeleton.iter_ones() {
            overlay.set(x, y, Rgb::new(255, 60, 60));
        }
        let kp = processed.keypoints;
        for point in [kp.head, kp.chest, kp.hand, kp.knee, kp.foot, kp.waist]
            .into_iter()
            .flatten()
        {
            let (cx, cy) = (point.0.round() as isize, point.1.round() as isize);
            for dy in -1..=1 {
                for dx in -1..=1 {
                    if overlay.in_bounds(cx + dx, cy + dy) {
                        overlay.set(
                            (cx + dx) as usize,
                            (cy + dy) as usize,
                            Rgb::new(80, 255, 80),
                        );
                    }
                }
            }
        }
        save_ppm(out_dir.join(format!("frame_{i:02}_overlay.ppm")), &overlay)?;
        println!(
            "frame {i:2}: pose '{}', skeleton {} px, {} key points -> artifacts/frame_{i:02}_*.p?m",
            clip.truth[i].pose,
            processed.skeleton.skeleton.count_ones(),
            kp.detected_parts(),
        );
    }
    println!("\nwrote the gallery to {}/", out_dir.display());
    Ok(())
}
