//! The paper's end use: a self-training tutor. Each "student" performs
//! three attempts with their habitual mistake; the system estimates the
//! poses of every attempt and reports the standards violations seen in a
//! majority of attempts, with advice — "advices to the jumper can be
//! given" (paper Section 6).
//!
//! ```text
//! cargo run --release --example jump_coach
//! ```

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::evaluation::evaluate_clip;
use slj_repro::core::scoring::assess_with_taxonomy;
use slj_repro::core::training::Trainer;
use slj_repro::sim::{ClipSpec, JumpFault, JumpSimulator, NoiseConfig};
use std::collections::HashMap;

const ATTEMPTS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = JumpSimulator::new(21);
    let noise = NoiseConfig::default();

    // Train the pose model once on correct jumps.
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())?.train(&data.train)?;

    // A class of six students, each with a different habit.
    let students: [(&str, Option<JumpFault>); 6] = [
        ("Ada (textbook jump)", None),
        ("Ben (keeps arms still)", Some(JumpFault::NoArmSwing)),
        ("Chloe (no crouch)", Some(JumpFault::NoCrouch)),
        ("Dan (no tuck in flight)", Some(JumpFault::NoTuck)),
        ("Eve (stiff landing)", Some(JumpFault::StiffLanding)),
        ("Finn (falls forward)", Some(JumpFault::Overbalance)),
    ];

    for (i, (name, fault)) in students.iter().enumerate() {
        // Findings are aggregated over several attempts: a violation is
        // reported when it shows up in the majority of them, which keeps
        // single-frame misclassifications from becoming bogus advice.
        let mut counts: HashMap<String, (usize, String)> = HashMap::new();
        for attempt in 0..ATTEMPTS {
            let clip = sim.generate_clip(&ClipSpec {
                total_frames: 44,
                seed: 700 + (i * ATTEMPTS + attempt) as u64,
                noise,
                fault: *fault,
                ..ClipSpec::default()
            });
            let report = evaluate_clip(&model, &clip)?;
            let predicted: Vec<_> = report.estimates.iter().map(|e| e.pose).collect();
            for finding in assess_with_taxonomy(model.taxonomy(), &predicted) {
                let entry = counts
                    .entry(finding.display.clone())
                    .or_insert_with(|| (0, finding.to_string()));
                entry.0 += 1;
            }
        }
        println!("\n=== {name} — {ATTEMPTS} attempts ===");
        let mut consistent: Vec<_> = counts.values().filter(|(n, _)| *n * 2 > ATTEMPTS).collect();
        consistent.sort_by_key(|(_, msg)| msg.clone());
        if consistent.is_empty() {
            println!("  no consistent standards violations — nice jumping!");
        } else {
            for (n, msg) in consistent {
                println!("  ✗ ({n}/{ATTEMPTS} attempts) {msg}");
            }
        }
    }
    Ok(())
}
